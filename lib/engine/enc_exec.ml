open Relalg
module C = Mpq_crypto

exception Crypto_error of string

let err fmt = Format.kasprintf (fun s -> raise (Crypto_error s)) fmt

(* Scheme keys are derived from the cluster secret by PRF plus a Speck
   key schedule — far too expensive to repeat per value, which is what
   the first row-at-a-time executor did. A ctx derives every cluster's
   keys eagerly at construction (eager, not lazy: the table is read-only
   afterwards, so worker domains can share it without synchronization;
   [Lazy.force] is not domain-safe). *)
type keys = { det : C.Det.key; rnd : C.Rnd.key; ope : C.Ope.key }

type ctx = {
  keyring : C.Keyring.t;
  clusters : Authz.Plan_keys.cluster list;
  keys : (string, keys) Hashtbl.t;
  (* predicate-constant ciphertext memo: the comparable schemes (det,
     ope) are deterministic, so encrypting the same constant under the
     same cluster per row is pure waste — a selection over an encrypted
     column used to pay a full OPE traversal for every row. Guarded by
     the mutex because selections run on worker domains. *)
  consts : (string * string * Value.t, Value.t) Hashtbl.t;
  consts_mu : Mutex.t;
}

let derive_keys keyring id =
  let s = C.Keyring.cluster_secret keyring id in
  { det = C.Keyring.det_key_of_secret s;
    rnd = C.Keyring.rnd_key_of_secret s;
    ope = C.Keyring.ope_key_of_secret s }

let make keyring clusters =
  let keys = Hashtbl.create (List.length clusters + 1) in
  List.iter
    (fun (c : Authz.Plan_keys.cluster) ->
      if not (Hashtbl.mem keys c.Authz.Plan_keys.id) then
        Hashtbl.add keys c.Authz.Plan_keys.id
          (derive_keys keyring c.Authz.Plan_keys.id))
    clusters;
  { keyring;
    clusters;
    keys;
    consts = Hashtbl.create 16;
    consts_mu = Mutex.create () }

let of_schemes keyring pairs =
  let clusters =
    List.map
      (fun (name, scheme) ->
        { Authz.Plan_keys.id = name;
          attrs = Attr.Set.singleton (Attr.make name);
          scheme;
          holders = Authz.Subject.Set.empty })
      pairs
  in
  make keyring clusters

let clusters ctx = ctx.clusters

let cluster_of ctx a =
  match Authz.Plan_keys.cluster_of_attr ctx.clusters a with
  | Some c -> c
  | None -> err "attribute %s belongs to no key cluster" (Attr.name a)

let cluster_by_id ctx id =
  match
    List.find_opt (fun c -> c.Authz.Plan_keys.id = id) ctx.clusters
  with
  | Some c -> c
  | None -> err "unknown key cluster %s" id

let scheme_of ctx a = (cluster_of ctx a).Authz.Plan_keys.scheme

let keys_of ctx id =
  match Hashtbl.find_opt ctx.keys id with
  | Some k -> k
  | None -> derive_keys ctx.keyring id

(* --- serialization ------------------------------------------------- *)

(* %h (hexadecimal float) round-trips every float exactly, including
   the ones string_of_float used to corrupt (it keeps only ~12 digits);
   float_of_string parses the hex form as well as nan/infinity. *)
let hex_float f = Printf.sprintf "%h" f

let serialize = function
  | Value.Null -> "n"
  | Value.Bool b -> if b then "b1" else "b0"
  | Value.Int i -> "i" ^ string_of_int i
  | Value.Float f -> "f" ^ hex_float f
  | Value.Str s -> "s" ^ s
  | Value.Date d -> "d" ^ string_of_int d
  | Value.Enc _ -> err "cannot re-serialize a ciphertext"

let deserialize s =
  if String.length s = 0 then err "empty serialized value"
  else
    let body = String.sub s 1 (String.length s - 1) in
    match s.[0] with
    | 'n' -> Value.Null
    | 'b' -> Value.Bool (body = "1")
    | 'i' -> Value.Int (int_of_string body)
    | 'f' -> Value.Float (float_of_string body)
    | 's' -> Value.Str body
    | 'd' -> Value.Date (int_of_string body)
    | c -> err "bad serialization tag %c" c

(* --- numeric images for OPE / Paillier ----------------------------- *)

(* Every numeric image is in cents (value * 100). The checks close two
   silent-garbage holes: [int_of_float] maps NaN/oversized floats to
   unspecified ints, and [i * 100] wraps around near [max_int]. *)

let cents f =
  if not (Float.is_finite f) then
    err "cannot encode non-finite float %s as cents" (hex_float f);
  let scaled = Float.round (f *. 100.0) in
  if Float.abs scaled >= 0x1p62 then
    err "float %s overflows the cent encoding" (hex_float f);
  int_of_float scaled

let int_cents i =
  if i > max_int / 100 || i < min_int / 100 then
    err "%d overflows the cent encoding" i;
  i * 100

(* OPE plaintext domain: signed 40-bit (the [Ope] module's own check
   raises [Invalid_argument]; surface the typed error instead). *)
let ope_min = -(1 lsl 39)
let ope_max = (1 lsl 39) - 1

let ope_guard img =
  if img < ope_min || img > ope_max then
    err "cent-scaled value %d outside the OPE plaintext domain" img;
  img

let str_prefix s =
  (* 4-byte big-endian prefix (fits the 40-bit OPE domain):
     order-preserving up to prefix ties; the deterministic tail in the
     payload recovers the exact string *)
  let v = ref 0 in
  for i = 0 to 3 do
    let byte = if i < String.length s then Char.code s.[i] else 0 in
    v := (!v lsl 8) lor byte
  done;
  !v

(* All numeric types share the cents scale so OPE order is preserved
   across them: Int 4 must land above Float 3.5 (the old unit-scale Int
   image put 4 below 350 = cents 3.50 — orderings involving an Int
   column and a Float constant came out wrong). *)
let ope_image = function
  | Value.Int i -> (ope_guard (int_cents i), 'i')
  | Value.Date d -> (ope_guard (int_cents d), 'd')
  | Value.Bool b -> ((if b then 100 else 0), 'b')
  | Value.Float f -> (ope_guard (cents f), 'f')
  | Value.Str s -> (str_prefix s, 's')
  | Value.Null | Value.Enc _ -> err "no OPE image for this value"

let phe_image = function
  | Value.Int i -> (int_cents i, 'i')
  | Value.Float f -> (cents f, 'f')
  | Value.Date d -> (int_cents d, 'd')
  | Value.Bool b -> ((if b then 100 else 0), 'b')
  | Value.Null | Value.Str _ | Value.Enc _ ->
      err "no additive image for this value"

let phe_unscale tag scaled =
  match tag with
  | 'i' when scaled mod 100 = 0 -> Value.Int (scaled / 100)
  | 'i' | 'f' -> Value.Float (float_of_int scaled /. 100.0)
  | 'd' -> Value.Date (scaled / 100)
  | 'b' -> Value.Bool (scaled <> 0)
  | c -> err "bad phe tag %c" c

(* --- OPE ciphertext comparison -------------------------------------- *)

let ope_bytes = 7

(* An OPE payload is [7-byte big-endian cipher | tag | det tail (strings
   only)]. The cipher prefix carries the order; the tag byte and the det
   tail do NOT (the old executor compared whole payloads, so two strings
   sharing a 4-byte prefix were silently ordered by their
   non-order-preserving det tails). *)

let tag_class = function
  | 'i' | 'f' -> `Num
  | 'd' -> `Date
  | 'b' -> `Bool
  | 's' -> `Str
  | t -> err "bad OPE tag %c" t

let ope_parts (c : Value.cipher) =
  let p = c.Value.payload in
  if String.length p < ope_bytes + 1 then err "truncated OPE payload";
  (String.sub p 0 ope_bytes, p.[ope_bytes])

let ope_compare a b =
  let pa, ta = ope_parts a and pb, tb = ope_parts b in
  if tag_class ta <> tag_class tb then
    err "incomparable OPE ciphertexts (tags %c / %c)" ta tb;
  let c = String.compare pa pb in
  if c <> 0 then c
  else if ta = 's' then
    if String.equal a.Value.payload b.Value.payload then 0
    else
      err
        "OPE order undefined: distinct strings share a 4-byte prefix \
         (ordering beyond the prefix needs plaintext)"
  else (* numeric images tied at cent precision are equal *) 0

let ope_equal a b =
  if String.equal a.Value.payload b.Value.payload then true
  else
    let pa, ta = ope_parts a and pb, tb = ope_parts b in
    if tag_class ta <> tag_class tb then false
    else if ta = 's' then false (* distinct payload = distinct string *)
    else String.equal pa pb

(* --- encryption (single value) -------------------------------------- *)

let encrypt_with ?rng ctx (cluster : Authz.Plan_keys.cluster) v =
  (* [rng] supplies the encryption randomness (Rnd IVs, Paillier
     blinding). Without it we draw from the keyring's shared stream,
     which is fine sequentially but order-dependent; parallel execution
     passes position-derived generators so ciphertext bytes don't depend
     on scheduling. *)
  let draw () = match rng with Some r -> r | None -> C.Keyring.rng ctx.keyring in
  let key_id = cluster.Authz.Plan_keys.id in
  let ks = keys_of ctx key_id in
  let mk scheme payload =
    Value.Enc { Value.scheme = C.Scheme.name scheme; key_id; payload }
  in
  match cluster.Authz.Plan_keys.scheme with
  | C.Scheme.Det -> mk C.Scheme.Det (C.Det.encrypt ks.det (serialize v))
  | C.Scheme.Rnd -> mk C.Scheme.Rnd (C.Rnd.encrypt ks.rnd (draw ()) (serialize v))
  | C.Scheme.Ope ->
      let image, tag = ope_image v in
      let prefix = C.Ope.encrypt_bytes ks.ope image in
      let tail =
        (* strings keep a deterministic tail for exact recovery *)
        match v with
        | Value.Str _ -> C.Det.encrypt ks.det (serialize v)
        | _ -> ""
      in
      mk C.Scheme.Ope (prefix ^ String.make 1 tag ^ tail)
  | C.Scheme.Phe ->
      let image, tag = phe_image v in
      let pk, _ = C.Keyring.paillier ctx.keyring in
      let cipher =
        C.Paillier.encrypt pk (draw ()) (C.Bignum.of_int image)
      in
      mk C.Scheme.Phe
        (Printf.sprintf "v|%s|%c" (C.Bignum.to_string cipher) tag)

let encrypt_value ?rng ctx a v =
  match v with
  | Value.Null -> Value.Null
  | Value.Enc _ -> err "attribute %s is already encrypted" (Attr.name a)
  | _ -> encrypt_with ?rng ctx (cluster_of ctx a) v

let node_rng ctx id =
  C.Keyring.derived_rng ctx.keyring ("exec-node:" ^ string_of_int id)

let prepare_parallel ctx =
  (* optional warm-up: the keygen is lock-protected in Keyring, so this
     only moves the one-time cost onto the calling domain *)
  ignore (C.Keyring.paillier ctx.keyring)

(* --- batched column kernels ------------------------------------------ *)

(* Per-(column, row) randomness pool. The pool pass replays the exact
   draw sequence of the row-at-a-time encryptor — per row [start + k]
   one generator [Prng.derive rng_root (start + k)], consumed across the
   encrypted columns in attribute order, Null cells drawing nothing —
   so the kernels below produce byte-identical ciphertext at any
   chunking/--jobs, while the expensive per-draw work (Paillier r^n)
   moves into a tight per-column loop. *)
type pool_slot =
  | No_draws
  | Ivs of int64 array
  | Units of C.Bignum.t array

let is_null_cell col k =
  match col with
  | Column.Values a -> ( match a.(k) with Value.Null -> true | _ -> false)
  | _ -> false

let encrypt_batch ctx ~rng_root ~start ~enc =
  let enc = List.map (fun (a, col) -> (a, cluster_of ctx a, col)) enc in
  let n = match enc with [] -> 0 | (_, _, c) :: _ -> Column.length c in
  let needs_phe =
    List.exists
      (fun (_, cl, _) -> cl.Authz.Plan_keys.scheme = C.Scheme.Phe)
      enc
  in
  let pk =
    if needs_phe then Some (fst (C.Keyring.paillier ctx.keyring)) else None
  in
  let cols = Array.of_list (List.map (fun (_, _, c) -> c) enc) in
  let slots =
    Array.of_list
      (List.map
         (fun (_, cl, _) ->
           match cl.Authz.Plan_keys.scheme with
           | C.Scheme.Rnd -> Ivs (Array.make n 0L)
           | C.Scheme.Phe -> Units (Array.make n C.Bignum.zero)
           | C.Scheme.Det | C.Scheme.Ope -> No_draws)
         enc)
  in
  let any_draws =
    Array.exists (function No_draws -> false | _ -> true) slots
  in
  if any_draws then
    Obs.time "enc_exec.pool_s" (fun () ->
        for k = 0 to n - 1 do
          let rng = C.Prng.derive rng_root (start + k) in
          Array.iteri
            (fun e slot ->
              match slot with
              | No_draws -> ()
              | Ivs a ->
                  if not (is_null_cell cols.(e) k) then
                    a.(k) <- C.Prng.next64 rng
              | Units a ->
                  if not (is_null_cell cols.(e) k) then
                    a.(k) <- C.Paillier.draw_unit (Option.get pk) rng)
            slots
        done);
  List.mapi
    (fun e (attr, cl, col) ->
      let key_id = cl.Authz.Plan_keys.id in
      let ks = keys_of ctx key_id in
      let scheme = cl.Authz.Plan_keys.scheme in
      let already () : Value.t =
        err "attribute %s is already encrypted" (Attr.name attr)
      in
      let mk payload =
        Value.Enc { Value.scheme = C.Scheme.name scheme; key_id; payload }
      in
      let out =
        Obs.time ("enc_exec.enc_s." ^ C.Scheme.name scheme) @@ fun () ->
        match scheme with
        | C.Scheme.Det -> (
            let enc s = mk (C.Det.encrypt ks.det s) in
            match col with
            | Column.Ints a -> Array.map (fun i -> enc ("i" ^ string_of_int i)) a
            | Column.Dates a -> Array.map (fun d -> enc ("d" ^ string_of_int d)) a
            | Column.Floats a -> Array.map (fun f -> enc ("f" ^ hex_float f)) a
            | Column.Bools a -> Array.map (fun b -> enc (if b then "b1" else "b0")) a
            | Column.Strs a -> Array.map (fun s -> enc ("s" ^ s)) a
            | Column.Values a ->
                Array.map
                  (function
                    | Value.Null -> Value.Null
                    | Value.Enc _ -> already ()
                    | v -> enc (serialize v))
                  a)
        | C.Scheme.Rnd -> (
            let ivs = match slots.(e) with Ivs a -> a | _ -> assert false in
            let enc k s = mk (C.Rnd.encrypt_iv ks.rnd ivs.(k) s) in
            match col with
            | Column.Ints a -> Array.mapi (fun k i -> enc k ("i" ^ string_of_int i)) a
            | Column.Dates a -> Array.mapi (fun k d -> enc k ("d" ^ string_of_int d)) a
            | Column.Floats a -> Array.mapi (fun k f -> enc k ("f" ^ hex_float f)) a
            | Column.Bools a ->
                Array.mapi (fun k b -> enc k (if b then "b1" else "b0")) a
            | Column.Strs a -> Array.mapi (fun k s -> enc k ("s" ^ s)) a
            | Column.Values a ->
                Array.mapi
                  (fun k v ->
                    match v with
                    | Value.Null -> Value.Null
                    | Value.Enc _ -> already ()
                    | v -> enc k (serialize v))
                  a)
        | C.Scheme.Ope -> (
            (* one memoized coder per column: values sharing partition-
               tree path prefixes pay the PRF once *)
            let coder = C.Ope.coder ks.ope in
            let pack img tag tail =
              mk (C.Ope.encode_bytes coder img ^ String.make 1 tag ^ tail)
            in
            match col with
            | Column.Ints a ->
                Array.map (fun i -> pack (ope_guard (int_cents i)) 'i' "") a
            | Column.Dates a ->
                Array.map (fun d -> pack (ope_guard (int_cents d)) 'd' "") a
            | Column.Bools a ->
                Array.map (fun b -> pack (if b then 100 else 0) 'b' "") a
            | Column.Floats a ->
                Array.map (fun f -> pack (ope_guard (cents f)) 'f' "") a
            | Column.Strs a ->
                Array.map
                  (fun s ->
                    pack (str_prefix s) 's' (C.Det.encrypt ks.det ("s" ^ s)))
                  a
            | Column.Values a ->
                Array.map
                  (function
                    | Value.Null -> Value.Null
                    | Value.Enc _ -> already ()
                    | v ->
                        let img, tag = ope_image v in
                        let tail =
                          match v with
                          | Value.Str _ -> C.Det.encrypt ks.det (serialize v)
                          | _ -> ""
                        in
                        pack img tag tail)
                  a)
        | C.Scheme.Phe -> (
            let pk = match pk with Some pk -> pk | None -> assert false in
            let units =
              match slots.(e) with Units a -> a | _ -> assert false
            in
            let enc k img tag =
              let rn = C.Paillier.blinding_of_unit pk units.(k) in
              let c = C.Paillier.encrypt_blinded pk rn (C.Bignum.of_int img) in
              mk (Printf.sprintf "v|%s|%c" (C.Paillier.cipher_to_string c) tag)
            in
            match col with
            | Column.Ints a -> Array.mapi (fun k i -> enc k (int_cents i) 'i') a
            | Column.Dates a -> Array.mapi (fun k d -> enc k (int_cents d) 'd') a
            | Column.Bools a ->
                Array.mapi (fun k b -> enc k (if b then 100 else 0) 'b') a
            | Column.Floats a -> Array.mapi (fun k f -> enc k (cents f) 'f') a
            | Column.Strs _ ->
                err "no additive image for attribute %s (string)"
                  (Attr.name attr)
            | Column.Values a ->
                Array.mapi
                  (fun k v ->
                    match v with
                    | Value.Null -> Value.Null
                    | Value.Enc _ -> already ()
                    | v ->
                        let img, tag = phe_image v in
                        enc k img tag)
                  a)
      in
      Column.Values out)
    enc

(* --- decryption ------------------------------------------------------ *)

let decrypt_gen ctx ~coder (c : Value.cipher) =
  ignore (cluster_by_id ctx c.Value.key_id);
  let ks = keys_of ctx c.Value.key_id in
  match c.Value.scheme with
  | "det" -> deserialize (C.Det.decrypt ks.det c.Value.payload)
  | "rnd" -> deserialize (C.Rnd.decrypt ks.rnd c.Value.payload)
  | "ope" ->
      let p = c.Value.payload in
      if String.length p < ope_bytes + 1 then err "truncated OPE payload";
      let tag = p.[ope_bytes] in
      let image = coder c.Value.key_id ks (String.sub p 0 ope_bytes) in
      (match tag with
      | 'i' -> Value.Int (image / 100)
      | 'd' -> Value.Date (image / 100)
      | 'b' -> Value.Bool (image <> 0)
      | 'f' -> Value.Float (float_of_int image /. 100.0)
      | 's' ->
          let tail =
            String.sub p (ope_bytes + 1) (String.length p - ope_bytes - 1)
          in
          deserialize (C.Det.decrypt ks.det tail)
      | t -> err "bad OPE tag %c" t)
  | "phe" -> (
      let pk, sk = C.Keyring.paillier ctx.keyring in
      match String.split_on_char '|' c.Value.payload with
      | [ "v"; cipher; tag ] ->
          let m =
            C.Paillier.decrypt_signed pk sk (C.Bignum.of_string cipher)
          in
          phe_unscale tag.[0]
            (match C.Bignum.to_int_opt m with
            | Some i -> i
            | None -> err "phe plaintext overflow")
      | [ "a"; cipher; count; tag ] ->
          let m =
            C.Paillier.decrypt_signed pk sk (C.Bignum.of_string cipher)
          in
          let n = int_of_string count in
          if n = 0 then Value.Null
          else
            let sum =
              match C.Bignum.to_int_opt m with
              | Some i -> i
              | None -> err "phe plaintext overflow"
            in
            ignore tag;
            Value.Float (float_of_int sum /. (100.0 *. float_of_int n))
      | _ -> err "bad phe payload")
  | s -> err "unknown scheme %s" s

let plain_coder _key_id (ks : keys) bytes = C.Ope.decrypt_bytes ks.ope bytes
let decrypt_cipher ctx c = decrypt_gen ctx ~coder:plain_coder c

let decrypt_value ctx = function
  | Value.Null -> Value.Null
  | Value.Enc c -> decrypt_cipher ctx c
  | _ -> err "decrypt of a plaintext value"

let decrypt_batch ctx col =
  (* per-batch OPE coder cache: a decrypted column shares the partition
     tree's upper levels exactly like an encrypted one *)
  let coders : (string, C.Ope.coder) Hashtbl.t = Hashtbl.create 4 in
  let coder key_id (ks : keys) bytes =
    let cd =
      match Hashtbl.find_opt coders key_id with
      | Some cd -> cd
      | None ->
          let cd = C.Ope.coder ks.ope in
          Hashtbl.add coders key_id cd;
          cd
    in
    C.Ope.decode_bytes cd bytes
  in
  let dec c = decrypt_gen ctx ~coder c in
  let dec =
    if Obs.enabled () then fun (c : Value.cipher) ->
      Obs.time ("enc_exec.dec_s." ^ c.Value.scheme) (fun () -> dec c)
    else dec
  in
  let out =
    Array.map
      (function
        | Value.Null -> Value.Null
        | Value.Enc c -> dec c
        | _ -> err "decrypt of a plaintext value")
      (Column.to_values col)
  in
  Column.of_values out

(* --- constants in dispatched conditions ----------------------------- *)

let const_cipher_uncached ctx (sample : Value.cipher) const =
  let cluster = cluster_by_id ctx sample.Value.key_id in
  (* A derived generator keeps this function pure: the comparable schemes
     (det, ope) draw no randomness anyway, and rnd/phe constants only get
     built on the way to an "unsupported comparison" error — but touching
     the shared stream here would make predicate evaluation unsafe to run
     on several domains. *)
  let rng = C.Keyring.derived_rng ctx.keyring "const" in
  match C.Scheme.of_name sample.Value.scheme with
  | Some scheme when scheme = cluster.Authz.Plan_keys.scheme ->
      encrypt_with ~rng ctx cluster const
  | Some scheme ->
      (* ciphertext produced under a different scheme than the cluster's
         current one: re-derive with the observed scheme *)
      encrypt_with ~rng ctx
        { cluster with Authz.Plan_keys.scheme }
        const
  | None -> err "unknown scheme %s" sample.Value.scheme

let const_cipher ctx (sample : Value.cipher) const =
  (* The uncached function is deterministic (fresh derived generator per
     call), so a cache hit returns exactly the bytes a recompute would;
     racing misses compute duplicates outside the lock, harmlessly. *)
  let key = (sample.Value.key_id, sample.Value.scheme, const) in
  let cached =
    Mutex.lock ctx.consts_mu;
    let r = Hashtbl.find_opt ctx.consts key in
    Mutex.unlock ctx.consts_mu;
    r
  in
  match cached with
  | Some v -> v
  | None ->
      let v = const_cipher_uncached ctx sample const in
      Mutex.lock ctx.consts_mu;
      if not (Hashtbl.mem ctx.consts key) then Hashtbl.add ctx.consts key v;
      Mutex.unlock ctx.consts_mu;
      v

(* --- homomorphic aggregation ---------------------------------------- *)

let phe_sum ctx values ~avg =
  let pk, _ = C.Keyring.paillier ctx.keyring in
  let parse v =
    match v with
    | Value.Enc c when c.Value.scheme = "phe" -> (
        match String.split_on_char '|' c.Value.payload with
        | [ "v"; cipher; tag ] -> Some (c, C.Bignum.of_string cipher, tag.[0])
        | _ -> err "cannot aggregate an already-aggregated phe value")
    | Value.Null -> None
    | _ -> err "phe aggregation over a non-phe value"
  in
  let parsed = List.filter_map parse values in
  match parsed with
  | [] -> Value.Null
  | (sample, first, tag) :: rest ->
      let sum =
        List.fold_left
          (fun acc (_, c, _) -> C.Paillier.add pk acc c)
          first rest
      in
      let n = List.length parsed in
      let payload =
        if avg then
          Printf.sprintf "a|%s|%d|%c" (C.Bignum.to_string sum) n tag
        else Printf.sprintf "v|%s|%c" (C.Bignum.to_string sum) tag
      in
      Value.Enc { sample with Value.payload }
