open Relalg
module C = Mpq_crypto

exception Crypto_error of string

let err fmt = Format.kasprintf (fun s -> raise (Crypto_error s)) fmt

type ctx = {
  keyring : C.Keyring.t;
  clusters : Authz.Plan_keys.cluster list;
}

let make keyring clusters = { keyring; clusters }

let of_schemes keyring pairs =
  let clusters =
    List.map
      (fun (name, scheme) ->
        { Authz.Plan_keys.id = name;
          attrs = Attr.Set.singleton (Attr.make name);
          scheme;
          holders = Authz.Subject.Set.empty })
      pairs
  in
  { keyring; clusters }

let clusters ctx = ctx.clusters

let cluster_of ctx a =
  match Authz.Plan_keys.cluster_of_attr ctx.clusters a with
  | Some c -> c
  | None -> err "attribute %s belongs to no key cluster" (Attr.name a)

let cluster_by_id ctx id =
  match
    List.find_opt (fun c -> c.Authz.Plan_keys.id = id) ctx.clusters
  with
  | Some c -> c
  | None -> err "unknown key cluster %s" id

let scheme_of ctx a = (cluster_of ctx a).Authz.Plan_keys.scheme

(* --- serialization ------------------------------------------------- *)

let serialize = function
  | Value.Null -> "n"
  | Value.Bool b -> if b then "b1" else "b0"
  | Value.Int i -> "i" ^ string_of_int i
  | Value.Float f -> "f" ^ string_of_float f
  | Value.Str s -> "s" ^ s
  | Value.Date d -> "d" ^ string_of_int d
  | Value.Enc _ -> err "cannot re-serialize a ciphertext"

let deserialize s =
  if String.length s = 0 then err "empty serialized value"
  else
    let body = String.sub s 1 (String.length s - 1) in
    match s.[0] with
    | 'n' -> Value.Null
    | 'b' -> Value.Bool (body = "1")
    | 'i' -> Value.Int (int_of_string body)
    | 'f' -> Value.Float (float_of_string body)
    | 's' -> Value.Str body
    | 'd' -> Value.Date (int_of_string body)
    | c -> err "bad serialization tag %c" c

(* --- numeric images for OPE / Paillier ----------------------------- *)

let cents f = int_of_float (Float.round (f *. 100.0))

let ope_image = function
  | Value.Int i -> (i, 'i')
  | Value.Date d -> (d, 'd')
  | Value.Bool b -> ((if b then 1 else 0), 'b')
  | Value.Float f -> (cents f, 'f')
  | Value.Str s ->
      (* 4-byte big-endian prefix (fits the 40-bit OPE domain):
         order-preserving up to prefix ties; the deterministic tail in the
         payload recovers the exact string *)
      let v = ref 0 in
      for i = 0 to 3 do
        let byte = if i < String.length s then Char.code s.[i] else 0 in
        v := (!v lsl 8) lor byte
      done;
      (!v, 's')
  | Value.Null | Value.Enc _ -> err "no OPE image for this value"

let phe_image = function
  | Value.Int i -> (i * 100, 'i')
  | Value.Float f -> (cents f, 'f')
  | Value.Date d -> (d * 100, 'd')
  | Value.Bool b -> ((if b then 100 else 0), 'b')
  | Value.Null | Value.Str _ | Value.Enc _ ->
      err "no additive image for this value"

let phe_unscale tag scaled =
  match tag with
  | 'i' when scaled mod 100 = 0 -> Value.Int (scaled / 100)
  | 'i' | 'f' -> Value.Float (float_of_int scaled /. 100.0)
  | 'd' -> Value.Date (scaled / 100)
  | 'b' -> Value.Bool (scaled <> 0)
  | c -> err "bad phe tag %c" c

(* --- keys ----------------------------------------------------------- *)

let secret ctx (cluster : Authz.Plan_keys.cluster) =
  C.Keyring.cluster_secret ctx.keyring cluster.Authz.Plan_keys.id

let det_key ctx cluster = C.Keyring.det_key_of_secret (secret ctx cluster)
let rnd_key ctx cluster = C.Keyring.rnd_key_of_secret (secret ctx cluster)
let ope_key ctx cluster = C.Keyring.ope_key_of_secret (secret ctx cluster)

(* --- encryption ----------------------------------------------------- *)

let encrypt_with ?rng ctx (cluster : Authz.Plan_keys.cluster) v =
  (* [rng] supplies the encryption randomness (Rnd IVs, Paillier
     blinding). Without it we draw from the keyring's shared stream,
     which is fine sequentially but order-dependent; parallel execution
     passes position-derived generators so ciphertext bytes don't depend
     on scheduling. *)
  let draw () = match rng with Some r -> r | None -> C.Keyring.rng ctx.keyring in
  let key_id = cluster.Authz.Plan_keys.id in
  let mk scheme payload =
    Value.Enc { Value.scheme = C.Scheme.name scheme; key_id; payload }
  in
  match cluster.Authz.Plan_keys.scheme with
  | C.Scheme.Det -> mk C.Scheme.Det (C.Det.encrypt (det_key ctx cluster) (serialize v))
  | C.Scheme.Rnd ->
      mk C.Scheme.Rnd
        (C.Rnd.encrypt (rnd_key ctx cluster) (draw ()) (serialize v))
  | C.Scheme.Ope ->
      let image, tag = ope_image v in
      let prefix = C.Ope.encrypt_bytes (ope_key ctx cluster) image in
      let tail =
        (* strings keep a deterministic tail for exact recovery *)
        match v with
        | Value.Str _ -> C.Det.encrypt (det_key ctx cluster) (serialize v)
        | _ -> ""
      in
      mk C.Scheme.Ope (prefix ^ String.make 1 tag ^ tail)
  | C.Scheme.Phe ->
      let image, tag = phe_image v in
      let pk, _ = C.Keyring.paillier ctx.keyring in
      let cipher =
        C.Paillier.encrypt pk (draw ()) (C.Bignum.of_int image)
      in
      mk C.Scheme.Phe
        (Printf.sprintf "v|%s|%c" (C.Bignum.to_string cipher) tag)

let encrypt_value ?rng ctx a v =
  match v with
  | Value.Null -> Value.Null
  | Value.Enc _ -> err "attribute %s is already encrypted" (Attr.name a)
  | _ -> encrypt_with ?rng ctx (cluster_of ctx a) v

let node_rng ctx id =
  C.Keyring.derived_rng ctx.keyring ("exec-node:" ^ string_of_int id)

let prepare_parallel ctx =
  (* optional warm-up: the keygen is lock-protected in Keyring, so this
     only moves the one-time cost onto the calling domain *)
  ignore (C.Keyring.paillier ctx.keyring)

(* --- decryption ----------------------------------------------------- *)

let ope_bytes = 7

let decrypt_cipher ctx (c : Value.cipher) =
  let cluster = cluster_by_id ctx c.Value.key_id in
  match c.Value.scheme with
  | "det" -> deserialize (C.Det.decrypt (det_key ctx cluster) c.Value.payload)
  | "rnd" -> deserialize (C.Rnd.decrypt (rnd_key ctx cluster) c.Value.payload)
  | "ope" ->
      let p = c.Value.payload in
      if String.length p < ope_bytes + 1 then err "truncated OPE payload";
      let tag = p.[ope_bytes] in
      let image =
        C.Ope.decrypt_bytes (ope_key ctx cluster) (String.sub p 0 ope_bytes)
      in
      (match tag with
      | 'i' -> Value.Int image
      | 'd' -> Value.Date image
      | 'b' -> Value.Bool (image <> 0)
      | 'f' -> Value.Float (float_of_int image /. 100.0)
      | 's' ->
          let tail =
            String.sub p (ope_bytes + 1) (String.length p - ope_bytes - 1)
          in
          deserialize (C.Det.decrypt (det_key ctx cluster) tail)
      | t -> err "bad OPE tag %c" t)
  | "phe" -> (
      let pk, sk = C.Keyring.paillier ctx.keyring in
      match String.split_on_char '|' c.Value.payload with
      | [ "v"; cipher; tag ] ->
          let m =
            C.Paillier.decrypt_signed pk sk (C.Bignum.of_string cipher)
          in
          phe_unscale tag.[0]
            (match C.Bignum.to_int_opt m with
            | Some i -> i
            | None -> err "phe plaintext overflow")
      | [ "a"; cipher; count; tag ] ->
          let m =
            C.Paillier.decrypt_signed pk sk (C.Bignum.of_string cipher)
          in
          let n = int_of_string count in
          if n = 0 then Value.Null
          else
            let sum =
              match C.Bignum.to_int_opt m with
              | Some i -> i
              | None -> err "phe plaintext overflow"
            in
            ignore tag;
            Value.Float (float_of_int sum /. (100.0 *. float_of_int n))
      | _ -> err "bad phe payload")
  | s -> err "unknown scheme %s" s

let decrypt_value ctx = function
  | Value.Null -> Value.Null
  | Value.Enc c -> decrypt_cipher ctx c
  | _ -> err "decrypt of a plaintext value"

(* --- constants in dispatched conditions ----------------------------- *)

let const_cipher ctx (sample : Value.cipher) const =
  let cluster = cluster_by_id ctx sample.Value.key_id in
  (* A derived generator keeps this function pure: the comparable schemes
     (det, ope) draw no randomness anyway, and rnd/phe constants only get
     built on the way to an "unsupported comparison" error — but touching
     the shared stream here would make predicate evaluation unsafe to run
     on several domains. *)
  let rng = C.Keyring.derived_rng ctx.keyring "const" in
  match C.Scheme.of_name sample.Value.scheme with
  | Some scheme when scheme = cluster.Authz.Plan_keys.scheme ->
      encrypt_with ~rng ctx cluster const
  | Some scheme ->
      (* ciphertext produced under a different scheme than the cluster's
         current one: re-derive with the observed scheme *)
      encrypt_with ~rng ctx
        { cluster with Authz.Plan_keys.scheme }
        const
  | None -> err "unknown scheme %s" sample.Value.scheme

(* --- homomorphic aggregation ---------------------------------------- *)

let phe_sum ctx values ~avg =
  let pk, _ = C.Keyring.paillier ctx.keyring in
  let parse v =
    match v with
    | Value.Enc c when c.Value.scheme = "phe" -> (
        match String.split_on_char '|' c.Value.payload with
        | [ "v"; cipher; tag ] -> Some (c, C.Bignum.of_string cipher, tag.[0])
        | _ -> err "cannot aggregate an already-aggregated phe value")
    | Value.Null -> None
    | _ -> err "phe aggregation over a non-phe value"
  in
  let parsed = List.filter_map parse values in
  match parsed with
  | [] -> Value.Null
  | (sample, first, tag) :: rest ->
      let sum =
        List.fold_left
          (fun acc (_, c, _) -> C.Paillier.add pk acc c)
          first rest
      in
      let n = List.length parsed in
      let payload =
        if avg then
          Printf.sprintf "a|%s|%d|%c" (C.Bignum.to_string sum) n tag
        else Printf.sprintf "v|%s|%c" (C.Bignum.to_string sum) tag
      in
      Value.Enc { sample with Value.payload }
