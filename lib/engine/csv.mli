(** CSV import/export for base relations.

    RFC-4180-style parsing: comma-separated, double-quoted fields with
    [""] escapes, optional header row. Values are parsed according to
    the schema's column types; empty unquoted fields become [Null]. *)

open Relalg

exception Csv_error of string

val parse : ?header:bool -> Schema.t -> string -> Table.t
(** [parse ~header schema text]. With [header] (default [true]) the
    first row must name the schema's columns (any order); without it,
    fields are read in schema column order. *)

val load : ?header:bool -> Schema.t -> string -> Table.t
(** [load schema path] reads a file. *)

val to_string : Table.t -> string
(** Render with a header row; ciphertext values are hex-encoded with a
    [enc:] prefix (not re-importable — export decrypted data instead). *)

val save : Table.t -> string -> unit
