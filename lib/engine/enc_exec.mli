(** Value-level encryption for plan execution.

    Bridges the abstract [Encrypt]/[Decrypt] plan operators and the
    concrete schemes in [mpq_crypto]. Each attribute is encrypted under
    its key cluster (Def. 6.1) with the cluster's scheme:

    - [det]: SIV deterministic encryption of the serialized value —
      supports equality, grouping, equi-joins;
    - [ope]: order-preserving encryption of the cent-scaled numeric
      image (strings by 4-byte prefix with a deterministic tail for
      exact recovery) — supports range conditions and min/max;
    - [phe]: Paillier over the cent-scaled numeric value — supports
      sum/avg; aggregated ciphertexts carry the divisor for avg;
    - [rnd]: randomized encryption — supports nothing, protects most.

    A ctx caches every cluster's derived scheme keys eagerly at
    construction, so per-value work is the cipher itself, not the PRF
    key schedule; the batched column kernels ({!encrypt_batch},
    {!decrypt_batch}) additionally share OPE partition-tree PRF work
    and split Paillier encryption into a pooled randomness pass plus a
    per-column exponentiation loop. *)

open Relalg

type ctx

exception Crypto_error of string

val make : Mpq_crypto.Keyring.t -> Authz.Plan_keys.cluster list -> ctx

val of_schemes :
  Mpq_crypto.Keyring.t -> (string * Mpq_crypto.Scheme.t) list -> ctx
(** Convenience: one singleton cluster per (attribute name, scheme),
    with every subject a holder. For tests and standalone use. *)

val clusters : ctx -> Authz.Plan_keys.cluster list

val scheme_of : ctx -> Attr.t -> Mpq_crypto.Scheme.t
(** Raises [Crypto_error] when the attribute belongs to no cluster. *)

val encrypt_value : ?rng:Mpq_crypto.Prng.t -> ctx -> Attr.t -> Value.t -> Value.t
(** [Null] passes through unencrypted. [rng] overrides the keyring's
    shared randomness stream; the executor passes generators derived
    from (node preorder position, row index) so ciphertext bytes are a
    function of position, not of evaluation order or physical plan
    identity — the property that makes parallel execution
    byte-identical to sequential, and DAG-interned plans (where one
    physical node occurs at several positions) byte-identical to their
    tree-shaped originals. *)

val node_rng : ctx -> int -> Mpq_crypto.Prng.t
(** [node_rng ctx pos] is the randomness root for the plan-node
    occurrence at preorder position [pos]; derive one child per row
    ({!Mpq_crypto.Prng.derive}) to encrypt under it. *)

val prepare_parallel : ctx -> unit
(** Force lazily-generated key material (the Paillier pair) up front.
    Optional: {!Mpq_crypto.Keyring.paillier} is itself domain-safe
    (keygen runs once under a lock), so parallel runs work without this
    call and plans that never touch phe values skip the keygen cost
    entirely. Idempotent. *)

val encrypt_batch :
  ctx ->
  rng_root:Mpq_crypto.Prng.t ->
  start:int ->
  enc:(Attr.t * Column.t) list ->
  Column.t list
(** [encrypt_batch ctx ~rng_root ~start ~enc] encrypts whole column
    slices. [enc] pairs each encrypted attribute (in the randomness-draw
    order — ascending attribute order) with its column slice for rows
    [start .. start + n - 1] of the node's input; the result columns are
    in the same order. Byte-identical to encrypting the same rows one at
    a time with [encrypt_value ~rng:(Prng.derive rng_root row)]: a pool
    pass replays the row-major randomness draws (Rnd IVs, Paillier
    units; Null cells draw nothing), then per-scheme kernels run
    column-major — one memoized OPE coder per column, Paillier blinding
    off the hot path, unboxed loops on typed columns. *)

val decrypt_batch : ctx -> Column.t -> Column.t
(** Column counterpart of {!decrypt_value} (Null passes through), with
    per-key OPE coder caching across the batch. *)

val decrypt_value : ctx -> Value.t -> Value.t
(** Dispatches on the ciphertext's own scheme/key tags; [Null] passes
    through. Raises [Crypto_error] on plaintext input or unknown key. *)

val ope_compare : Value.cipher -> Value.cipher -> int
(** Order of two OPE ciphertexts under the same key: compares the
    order-preserving 7-byte prefixes only (the tag byte and a string's
    deterministic tail carry no order). Numeric images tied at cent
    precision compare equal. Raises [Crypto_error] for distinct strings
    sharing a 4-byte prefix (their order is not recoverable from
    ciphertext) and for ciphertexts of incomparable types. *)

val ope_equal : Value.cipher -> Value.cipher -> bool
(** Total equality test: payload equality, or prefix equality for
    numeric images (Int 4 = Float 4.0 at cent precision). Never
    raises on tied string prefixes — the deterministic tail decides. *)

val const_cipher : ctx -> Value.cipher -> Value.t -> Value.t
(** [const_cipher ctx sample const] encrypts a comparison constant under
    the same scheme and key as [sample], so a dispatched condition can be
    evaluated on encrypted values (Sec. 5's "condition formulated on
    encrypted values"). *)

val phe_sum : ctx -> Value.t list -> avg:bool -> Value.t
(** Homomorphic aggregation of Paillier ciphertexts: the encrypted sum,
    or the encrypted average (sum plus divisor) when [avg] is set. *)

val serialize : Value.t -> string
val deserialize : string -> Value.t
