(** Value-level encryption for plan execution.

    Bridges the abstract [Encrypt]/[Decrypt] plan operators and the
    concrete schemes in [mpq_crypto]. Each attribute is encrypted under
    its key cluster (Def. 6.1) with the cluster's scheme:

    - [det]: SIV deterministic encryption of the serialized value —
      supports equality, grouping, equi-joins;
    - [ope]: order-preserving encryption of the numeric image (floats
      scaled to cents, strings by 4-byte prefix with a deterministic
      tail for exact recovery) — supports range conditions and min/max;
    - [phe]: Paillier over the cent-scaled numeric value — supports
      sum/avg; aggregated ciphertexts carry the divisor for avg;
    - [rnd]: randomized encryption — supports nothing, protects most. *)

open Relalg

type ctx

exception Crypto_error of string

val make : Mpq_crypto.Keyring.t -> Authz.Plan_keys.cluster list -> ctx

val of_schemes :
  Mpq_crypto.Keyring.t -> (string * Mpq_crypto.Scheme.t) list -> ctx
(** Convenience: one singleton cluster per (attribute name, scheme),
    with every subject a holder. For tests and standalone use. *)

val clusters : ctx -> Authz.Plan_keys.cluster list

val scheme_of : ctx -> Attr.t -> Mpq_crypto.Scheme.t
(** Raises [Crypto_error] when the attribute belongs to no cluster. *)

val encrypt_value : ?rng:Mpq_crypto.Prng.t -> ctx -> Attr.t -> Value.t -> Value.t
(** [Null] passes through unencrypted. [rng] overrides the keyring's
    shared randomness stream; the executor passes generators derived from
    (plan-node id, row index) so ciphertext bytes are a function of
    position, not of evaluation order — the property that makes parallel
    execution byte-identical to sequential. *)

val node_rng : ctx -> int -> Mpq_crypto.Prng.t
(** [node_rng ctx id] is the randomness root for plan node [id]; derive
    one child per row ({!Mpq_crypto.Prng.derive}) to encrypt under it. *)

val prepare_parallel : ctx -> unit
(** Force lazily-generated key material (the Paillier pair) up front.
    Optional: {!Mpq_crypto.Keyring.paillier} is itself domain-safe
    (keygen runs once under a lock), so parallel runs work without this
    call and plans that never touch phe values skip the keygen cost
    entirely. Idempotent. *)

val decrypt_value : ctx -> Value.t -> Value.t
(** Dispatches on the ciphertext's own scheme/key tags; [Null] passes
    through. Raises [Crypto_error] on plaintext input or unknown key. *)

val const_cipher : ctx -> Value.cipher -> Value.t -> Value.t
(** [const_cipher ctx sample const] encrypts a comparison constant under
    the same scheme and key as [sample], so a dispatched condition can be
    evaluated on encrypted values (Sec. 5's "condition formulated on
    encrypted values"). *)

val phe_sum : ctx -> Value.t list -> avg:bool -> Value.t
(** Homomorphic aggregation of Paillier ciphertexts: the encrypted sum,
    or the encrypted average (sum plus divisor) when [avg] is set. *)

val serialize : Value.t -> string
val deserialize : string -> Value.t
