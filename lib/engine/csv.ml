open Relalg

exception Csv_error of string

let err fmt = Format.kasprintf (fun s -> raise (Csv_error s)) fmt

(* split a CSV text into rows of raw fields, honoring quotes *)
let split_rows text =
  let rows = ref [] and fields = ref [] and buf = Buffer.create 32 in
  let quoted_field = ref false in
  let push_field () =
    fields := (Buffer.contents buf, !quoted_field) :: !fields;
    Buffer.clear buf;
    quoted_field := false
  in
  let push_row () =
    push_field ();
    (match !fields with
    | [ ("", false) ] -> () (* blank line *)
    | fs -> rows := List.rev fs :: !rows);
    fields := []
  in
  let n = String.length text in
  let i = ref 0 in
  let in_quotes = ref false in
  while !i < n do
    let c = text.[!i] in
    if !in_quotes then
      if c = '"' then
        if !i + 1 < n && text.[!i + 1] = '"' then begin
          Buffer.add_char buf '"';
          i := !i + 1
        end
        else in_quotes := false
      else Buffer.add_char buf c
    else
      (match c with
      | '"' ->
          in_quotes := true;
          quoted_field := true
      | ',' -> push_field ()
      | '\n' -> push_row ()
      | '\r' -> ()
      | c -> Buffer.add_char buf c);
    incr i
  done;
  if !in_quotes then err "unterminated quote";
  if Buffer.length buf > 0 || !fields <> [] then push_row ();
  List.rev !rows

let parse_value ty (raw, quoted) =
  let raw = if quoted then raw else String.trim raw in
  if raw = "" && not quoted then Value.Null
  else
    match ty with
    | Schema.Tint -> (
        match int_of_string_opt raw with
        | Some i -> Value.Int i
        | None -> err "not an integer: %s" raw)
    | Schema.Tfloat -> (
        match float_of_string_opt raw with
        | Some f -> Value.Float f
        | None -> err "not a number: %s" raw)
    | Schema.Tstring -> Value.Str raw
    | Schema.Tdate -> (
        try Value.date_of_string raw
        with Invalid_argument _ -> err "not a date: %s" raw)
    | Schema.Tbool -> (
        match String.lowercase_ascii raw with
        | "true" | "t" | "1" -> Value.Bool true
        | "false" | "f" | "0" -> Value.Bool false
        | _ -> err "not a boolean: %s" raw)

let parse ?(header = true) schema text =
  let rows = split_rows text in
  let cols = Schema.attr_list schema in
  let order, data_rows =
    if header then
      match rows with
      | [] -> err "empty input"
      | hd :: rest ->
          let names = List.map (fun (f, _) -> String.trim f) hd in
          let order =
            List.map
              (fun name ->
                match
                  List.find_opt
                    (fun a ->
                      String.lowercase_ascii (Attr.name a)
                      = String.lowercase_ascii name)
                    cols
                with
                | Some a -> a
                | None -> err "unknown column %s" name)
              names
          in
          let rec dup = function
            | [] -> None
            | a :: rest ->
                if List.exists (Attr.equal a) rest then Some a else dup rest
          in
          (match dup order with
          | Some a -> err "duplicate column %s in header" (Attr.name a)
          | None -> ());
          let missing =
            List.filter (fun a -> not (List.memq a order)) cols
          in
          if missing <> [] then
            err "missing columns: %s"
              (String.concat "," (List.map Attr.name missing));
          (order, rest)
    else (cols, rows)
  in
  let arity = List.length order in
  let table_rows =
    List.map
      (fun fields ->
        if List.length fields <> arity then
          err "row arity %d, expected %d" (List.length fields) arity;
        let by_attr =
          List.map2
            (fun a f ->
              let ty =
                match Schema.type_of schema a with
                | Some ty -> ty
                | None ->
                    err "column %s of %s has no declared type" (Attr.name a)
                      schema.Schema.name
              in
              (a, parse_value ty f))
            order fields
        in
        Array.of_list (List.map (fun a -> List.assoc a by_attr) cols))
      data_rows
  in
  Table.of_schema schema table_rows

let load ?header schema path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse ?header schema text

let escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let render_value = function
  | Value.Null -> ""
  | Value.Bool b -> string_of_bool b
  | Value.Int i -> string_of_int i
  | Value.Float f -> Printf.sprintf "%g" f
  | Value.Str s -> escape s
  | Value.Date _ as v -> Value.to_string v
  | Value.Enc c ->
      let hex = Buffer.create (2 * String.length c.Value.payload) in
      String.iter
        (fun ch -> Buffer.add_string hex (Printf.sprintf "%02x" (Char.code ch)))
        c.Value.payload;
      Printf.sprintf "enc:%s:%s" c.Value.scheme (Buffer.contents hex)

let to_string table =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (String.concat "," (List.map Attr.name (Table.attrs table)));
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat "," (Array.to_list (Array.map render_value row)));
      Buffer.add_char buf '\n')
    (Table.rows table);
  Buffer.contents buf

let save table path =
  let oc = open_out path in
  output_string oc (to_string table);
  close_out oc
