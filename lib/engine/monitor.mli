(** Runtime reference monitor.

    Each data authority (and, defensively, every participant) re-checks
    authorizations before data crosses a subject boundary (Sec. 6: "each
    data authority will perform a control at its side, before releasing
    the data"). The monitor executes an extended plan and, at every edge
    whose endpoints have different executors, checks Def. 4.1 for the
    receiving subject against the transferred relation's profile. It also
    audits profile/data consistency: a column listed as visible encrypted
    must actually contain ciphertext, and vice versa. *)


type event = {
  node_id : int;
  kind : [ `Transfer of Authz.Subject.t | `Consistency ];
  detail : string;
}

type report = { events : event list; violations : event list }

exception Violation of event

val run :
  ?enforce:bool ->
  ?pool:Par.pool ->
  policy:Authz.Authorization.t ->
  Exec.context ->
  Authz.Extend.t ->
  Table.t * report
(** Execute under monitoring. With [enforce] (default [true]) the first
    violation raises {!Violation}; otherwise violations are only
    collected in the report. [pool] parallelizes the underlying
    execution; checks replay post-order either way (see
    {!Exec.run_with_hook}). *)

val check_consistency : Authz.Profile.t -> Table.t -> string option
(** [None] when the table's columns match the profile's visible
    plaintext/encrypted split. *)
