open Relalg

(* Dual representation: a table materializes as rows (Value arrays, the
   operator-at-a-time layout) and/or as typed columns (the batch-kernel
   layout). Whichever side is missing is derived on demand and cached;
   the caches are single idempotent writes of structurally-equal values,
   so a caller must force the representation it needs *before* fanning
   out to worker domains (Exec does). *)
type t = {
  attrs : Attr.t list;
  index : int Attr.Map.t;
  nrows : int;
  mutable rows_v : Value.t array list option;
  mutable cols_v : Column.t array option;
}

let build_index attrs =
  List.fold_left
    (fun (i, m) a -> (i + 1, Attr.Map.add a i m))
    (0, Attr.Map.empty) attrs
  |> snd

let create attrs rows =
  let n = List.length attrs in
  List.iter
    (fun r ->
      if Array.length r <> n then
        invalid_arg
          (Printf.sprintf "Table.create: row arity %d, header arity %d"
             (Array.length r) n))
    rows;
  { attrs;
    index = build_index attrs;
    nrows = List.length rows;
    rows_v = Some rows;
    cols_v = None }

let of_columns attrs cols =
  let n = List.length attrs in
  if Array.length cols <> n then
    invalid_arg
      (Printf.sprintf "Table.of_columns: %d columns, header arity %d"
         (Array.length cols) n);
  let nrows = if n = 0 then 0 else Column.length cols.(0) in
  Array.iteri
    (fun j c ->
      if Column.length c <> nrows then
        invalid_arg
          (Printf.sprintf
             "Table.of_columns: column %d has %d rows, column 0 has %d" j
             (Column.length c) nrows))
    cols;
  { attrs;
    index = build_index attrs;
    nrows;
    rows_v = None;
    cols_v = Some cols }

let of_schema s rows = create (Schema.attr_list s) rows
let attrs t = t.attrs
let cardinality t = t.nrows

let rows t =
  match t.rows_v with
  | Some r -> r
  | None ->
      let cols =
        match t.cols_v with Some c -> c | None -> assert false
      in
      let ncols = Array.length cols in
      let r =
        List.init t.nrows (fun i ->
            Array.init ncols (fun j -> Column.get cols.(j) i))
      in
      t.rows_v <- Some r;
      r

let columns t =
  match t.cols_v with
  | Some c -> c
  | None ->
      let rs =
        match t.rows_v with Some r -> r | None -> assert false
      in
      let arr = Array.of_list rs in
      let c =
        Array.init (List.length t.attrs) (fun j ->
            Column.of_values (Array.init t.nrows (fun i -> arr.(i).(j))))
      in
      t.cols_v <- Some c;
      c

exception Unknown_attribute of { attr : string; columns : string list }

let col_index t a =
  match Attr.Map.find_opt a t.index with
  | Some i -> i
  | None ->
      raise
        (Unknown_attribute
           { attr = Attr.name a; columns = List.map Attr.name t.attrs })

let value t row a = row.(col_index t a)

let select_columns t cols =
  match t.cols_v with
  | Some arr ->
      (* column sharing: projection copies pointers, not cells *)
      of_columns cols
        (Array.of_list (List.map (fun a -> arr.(col_index t a)) cols))
  | None ->
      let idx = List.map (col_index t) cols in
      let project r = Array.of_list (List.map (fun i -> r.(i)) idx) in
      create cols (List.map project (rows t))

let map_column t a f =
  let i = col_index t a in
  match t.cols_v with
  | Some arr ->
      let arr' = Array.copy arr in
      arr'.(i) <- Column.of_values (Array.map f (Column.to_values arr.(i)));
      of_columns t.attrs arr'
  | None ->
      let rows =
        List.map
          (fun r ->
            let r' = Array.copy r in
            r'.(i) <- f r.(i);
            r')
          (rows t)
      in
      create t.attrs rows

let append_rows t extra = create t.attrs (rows t @ extra)

let row_key r = String.concat "\x00" (Array.to_list (Array.map Value.to_string r))

let equal_bag a b =
  let a_sorted = List.sort Attr.compare a.attrs in
  let b_sorted = List.sort Attr.compare b.attrs in
  List.equal Attr.equal a_sorted b_sorted
  &&
  let canon t =
    let t = select_columns t a_sorted in
    List.sort String.compare (List.map row_key (rows t))
  in
  List.equal String.equal (canon a) (canon b)

let value_bytes = function
  | Value.Null -> 1
  | Value.Bool _ -> 1
  | Value.Int _ -> 8
  | Value.Float _ -> 8
  | Value.Str s -> String.length s
  | Value.Date _ -> 4
  | Value.Enc c -> String.length c.Value.payload + 8

let byte_size t =
  match t.cols_v with
  | Some cols ->
      Array.fold_left
        (fun acc c ->
          match c with
          | Column.Ints a -> acc + (8 * Array.length a)
          | Column.Dates a -> acc + (4 * Array.length a)
          | Column.Floats a -> acc + (8 * Array.length a)
          | Column.Bools a -> acc + Array.length a
          | Column.Strs a ->
              Array.fold_left (fun acc s -> acc + String.length s) acc a
          | Column.Values a ->
              Array.fold_left (fun acc v -> acc + value_bytes v) acc a)
        0 cols
  | None ->
      List.fold_left
        (fun acc r -> Array.fold_left (fun acc v -> acc + value_bytes v) acc r)
        0 (rows t)

let to_string ?(limit = 20) t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (String.concat " | " (List.map Attr.name t.attrs));
  Buffer.add_char buf '\n';
  List.iteri
    (fun i r ->
      if i < limit then begin
        Buffer.add_string buf
          (String.concat " | "
             (Array.to_list (Array.map Value.to_string r)));
        Buffer.add_char buf '\n'
      end)
    (rows t);
  if cardinality t > limit then
    Buffer.add_string buf
      (Printf.sprintf "... (%d rows total)\n" (cardinality t));
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (to_string t)
