open Relalg

type t = {
  attrs : Attr.t list;
  index : int Attr.Map.t;
  rows : Value.t array list;
}

let build_index attrs =
  List.fold_left
    (fun (i, m) a -> (i + 1, Attr.Map.add a i m))
    (0, Attr.Map.empty) attrs
  |> snd

let create attrs rows =
  let n = List.length attrs in
  List.iter
    (fun r ->
      if Array.length r <> n then
        invalid_arg
          (Printf.sprintf "Table.create: row arity %d, header arity %d"
             (Array.length r) n))
    rows;
  { attrs; index = build_index attrs; rows }

let of_schema s rows = create (Schema.attr_list s) rows
let attrs t = t.attrs
let rows t = t.rows
let cardinality t = List.length t.rows

exception Unknown_attribute of { attr : string; columns : string list }

let col_index t a =
  match Attr.Map.find_opt a t.index with
  | Some i -> i
  | None ->
      raise
        (Unknown_attribute
           { attr = Attr.name a; columns = List.map Attr.name t.attrs })

let value t row a = row.(col_index t a)

let select_columns t cols =
  let idx = List.map (col_index t) cols in
  let project r = Array.of_list (List.map (fun i -> r.(i)) idx) in
  create cols (List.map project t.rows)

let map_column t a f =
  let i = col_index t a in
  let rows =
    List.map
      (fun r ->
        let r' = Array.copy r in
        r'.(i) <- f r.(i);
        r')
      t.rows
  in
  { t with rows }

let append_rows t extra = create t.attrs (t.rows @ extra)

let row_key r = String.concat "\x00" (Array.to_list (Array.map Value.to_string r))

let equal_bag a b =
  let a_sorted = List.sort Attr.compare a.attrs in
  let b_sorted = List.sort Attr.compare b.attrs in
  List.equal Attr.equal a_sorted b_sorted
  &&
  let canon t =
    let t = select_columns t a_sorted in
    List.sort String.compare (List.map row_key t.rows)
  in
  List.equal String.equal (canon a) (canon b)

let value_bytes = function
  | Value.Null -> 1
  | Value.Bool _ -> 1
  | Value.Int _ -> 8
  | Value.Float _ -> 8
  | Value.Str s -> String.length s
  | Value.Date _ -> 4
  | Value.Enc c -> String.length c.Value.payload + 8

let byte_size t =
  List.fold_left
    (fun acc r -> Array.fold_left (fun acc v -> acc + value_bytes v) acc r)
    0 t.rows

let to_string ?(limit = 20) t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (String.concat " | " (List.map Attr.name t.attrs));
  Buffer.add_char buf '\n';
  List.iteri
    (fun i r ->
      if i < limit then begin
        Buffer.add_string buf
          (String.concat " | "
             (Array.to_list (Array.map Value.to_string r)));
        Buffer.add_char buf '\n'
      end)
    t.rows;
  if cardinality t > limit then
    Buffer.add_string buf
      (Printf.sprintf "... (%d rows total)\n" (cardinality t));
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (to_string t)
