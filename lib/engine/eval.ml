open Relalg

exception Eval_error of string

let err fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

let of_comparison op c =
  match op with
  | Predicate.Eq -> c = 0
  | Predicate.Neq -> c <> 0
  | Predicate.Lt -> c < 0
  | Predicate.Le -> c <= 0
  | Predicate.Gt -> c > 0
  | Predicate.Ge -> c >= 0

let cipher_compare op (a : Value.cipher) (b : Value.cipher) =
  if a.Value.scheme <> b.Value.scheme || a.Value.key_id <> b.Value.key_id then
    err "comparison of ciphertexts under different schemes/keys"
  else
    match (a.Value.scheme, op) with
    | "det", (Predicate.Eq | Predicate.Neq) ->
        of_comparison op (compare a.Value.payload b.Value.payload)
    | "det", _ -> err "deterministic encryption supports only equality"
    | "ope", (Predicate.Eq | Predicate.Neq) ->
        (* total equality: cent-precision for numeric images, det-tail
           (exact string) equality for strings *)
        of_comparison op (if Enc_exec.ope_equal a b then 0 else 1)
    | "ope", _ ->
        (* order lives in the 7-byte OPE prefix only; Enc_exec raises
           Crypto_error for tied-prefix strings instead of silently
           ordering them by their det tails *)
        of_comparison op (Enc_exec.ope_compare a b)
    | "rnd", _ -> err "randomized encryption supports no comparison"
    | "phe", _ -> err "homomorphic encryption supports no comparison"
    | s, _ -> err "unknown scheme %s" s

let rec compare_values ?ctx op a b =
  match (a, b) with
  | Value.Null, _ | _, Value.Null -> false
  | Value.Enc ca, Value.Enc cb -> cipher_compare op ca cb
  | Value.Enc ca, plain -> (
      match ctx with
      | Some c -> compare_values ~ctx:c op a (Enc_exec.const_cipher c ca plain)
      | None -> err "encrypted comparison requires a crypto context")
  | plain, Value.Enc cb -> (
      match ctx with
      | Some c ->
          compare_values ~ctx:c op (Enc_exec.const_cipher c cb plain) b
      | None ->
          ignore plain;
          err "encrypted comparison requires a crypto context")
  | a, b -> (
      match op with
      | Predicate.Eq -> Value.equal a b
      | Predicate.Neq -> not (Value.equal a b)
      | _ -> (
          try of_comparison op (Value.compare a b)
          with Value.Incomparable _ ->
            err "incomparable values %s / %s" (Value.to_string a)
              (Value.to_string b)))

let atom ?ctx table row a =
  let get attr = Table.value table row attr in
  match a with
  | Predicate.Cmp_const (attr, op, v) -> compare_values ?ctx op (get attr) v
  | Predicate.Cmp_attr (x, op, y) -> compare_values ?ctx op (get x) (get y)
  | Predicate.In_list (attr, vs) ->
      List.exists (fun v -> compare_values ?ctx Predicate.Eq (get attr) v) vs
  | Predicate.Like (attr, pattern) -> (
      match get attr with
      | Value.Str s -> Predicate.like_matches ~pattern s
      | Value.Null -> false
      | Value.Enc _ -> err "LIKE requires plaintext"
      | v -> err "LIKE over non-string %s" (Value.to_string v))

let predicate ?ctx table row p =
  List.for_all (fun clause -> List.exists (atom ?ctx table row) clause) p
