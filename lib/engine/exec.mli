(** Plan execution over in-memory tables.

    Executes both original plans and extended plans (with
    [Encrypt]/[Decrypt] nodes, which require a crypto context). Joins use
    a hash join on conjunctive equality pairs — including pairs of
    deterministic ciphertexts — with a nested-loop fallback; group-by
    hashes on the key tuple and supports homomorphic [sum]/[avg] over
    Paillier ciphertexts and [min]/[max] over OPE ciphertexts.

    {2 Parallel execution}

    With [?pool] (a {!Par.pool}), operators fan row chunks out across
    domains: scan/filter/project/udf/encrypt/decrypt chunk their input,
    the hash join partitions both sides by key, group-by partitions rows
    in parallel and merges groups sequentially, and independent sibling
    subplans of a join/product run concurrently. The result is
    {e byte-identical} to the sequential run: every operator reproduces
    the sequential output order, and encryption randomness is derived
    from (plan-node preorder position, row index) rather than a shared
    stream, so even ciphertext bytes are a function of position, not
    scheduling. *)

open Relalg

exception Exec_error of string

type udf = Value.t list -> Value.t
(** Receives the values of the input attributes in attribute order.
    Under a pool, a UDF may be called from several domains concurrently:
    implementations must be thread-safe (pure functions are). *)

type context = {
  tables : (string * Table.t) list;  (** base relations by name *)
  udfs : (string * udf) list;
  crypto : Enc_exec.ctx option;
}

val context :
  ?udfs:(string * udf) list ->
  ?crypto:Enc_exec.ctx ->
  (string * Table.t) list ->
  context

type subplan_memo = {
  lookup : pos:int -> Plan.t -> Table.t option;
  store : pos:int -> Plan.t -> Table.t -> unit;
}
(** Sub-plan result memoization (multi-query work sharing). Before
    executing a subtree at preorder position [pos], the executor asks
    [lookup]; a [Some table] answer stands in for the whole subtree.
    Every subtree computed locally is offered to [store] afterwards.
    Soundness is the caller's burden: the memo key must cover
    everything the subtree's bytes depend on — structure, preorder
    position when ciphertext is produced inside, key clusters,
    environment (see [Serve.Service]). Under [?pool] both callbacks
    may run on worker domains concurrently; implementations
    synchronize their own state. *)

val run : ?pool:Par.pool -> ?memo:subplan_memo -> context -> Plan.t -> Table.t
(** Positions passed to [?memo] are per-occurrence preorder positions,
    threaded through the traversal itself — sound on hash-consed DAG
    plans ({!Planner.Dag}) where one physical node occupies several
    positions. Encryption randomness uses the same per-occurrence
    labels, so a DAG-interned plan produces ciphertext byte-identical
    to its tree-shaped original. *)

val run_with_hook :
  ?pool:Par.pool ->
  ?memo:subplan_memo ->
  context ->
  hook:(Plan.t -> Table.t -> unit) ->
  Plan.t ->
  Table.t
(** Like {!run}, invoking [hook] on every node's output; used by the
    runtime monitor and the distributed simulator. A [?memo] hit
    contributes only the subtree root to the hook log (its interior was
    not executed here), so memoization and hook consumers are not
    combined in practice — the serving layer runs hook-free.

    Determinism guarantee: hooks are invoked sequentially on the calling
    domain, in the plan's post-order (left subtree, right subtree, node),
    {e regardless of [?pool]} — execution records the (node, table) log
    and replays it after the plan has run. Hooks may therefore keep
    unsynchronized mutable state, and a raising hook aborts at the same
    node under any job count (after execution, rather than mid-plan). *)

val hash_key : Value.t -> string
(** Equality-compatible hash key (full ciphertext payload for [Enc]). *)
