(** Plan execution over in-memory tables.

    Executes both original plans and extended plans (with
    [Encrypt]/[Decrypt] nodes, which require a crypto context). Joins use
    a hash join on conjunctive equality pairs — including pairs of
    deterministic ciphertexts — with a nested-loop fallback; group-by
    hashes on the key tuple and supports homomorphic [sum]/[avg] over
    Paillier ciphertexts and [min]/[max] over OPE ciphertexts. *)

open Relalg

exception Exec_error of string

type udf = Value.t list -> Value.t
(** Receives the values of the input attributes in attribute order. *)

type context = {
  tables : (string * Table.t) list;  (** base relations by name *)
  udfs : (string * udf) list;
  crypto : Enc_exec.ctx option;
}

val context :
  ?udfs:(string * udf) list ->
  ?crypto:Enc_exec.ctx ->
  (string * Table.t) list ->
  context

val run : context -> Plan.t -> Table.t

val run_with_hook :
  context -> hook:(Plan.t -> Table.t -> unit) -> Plan.t -> Table.t
(** Like {!run}, invoking [hook] on every node's output (post-order);
    used by the runtime monitor. *)

val hash_key : Value.t -> string
(** Equality-compatible hash key (full ciphertext payload for [Enc]). *)
