(** In-memory relations.

    A table is an ordered list of attributes plus a bag of tuples,
    held in one (or both) of two layouts: rows ([Value.t array] per
    tuple, the operator-at-a-time layout) and typed columns
    ({!Relalg.Column.t} per attribute, the batch-kernel layout). The
    missing layout is derived on demand and cached. Bag semantics
    throughout (SQL-style: projection does not deduplicate). *)

open Relalg

type t

val create : Attr.t list -> Value.t array list -> t
(** Row-layout constructor. Raises [Invalid_argument] when a row's
    arity differs from the header's. *)

val of_columns : Attr.t list -> Column.t array -> t
(** Column-layout constructor; columns are in header order. Raises
    [Invalid_argument] on arity or length mismatch. *)

val of_schema : Schema.t -> Value.t array list -> t

val attrs : t -> Attr.t list

val rows : t -> Value.t array list
(** Materializes (and caches) the row layout. Not safe to call for the
    first time concurrently from several domains — force it on the
    coordinating domain before fan-out. *)

val columns : t -> Column.t array
(** Materializes (and caches) the column layout; same single-domain
    first-call rule as {!rows}. *)

val cardinality : t -> int

exception Unknown_attribute of { attr : string; columns : string list }
(** A column lookup named an attribute the table does not carry. Carries
    the offending attribute and the table's actual header so the error is
    actionable without a debugger ({!Exec} re-raises it as [Exec_error]
    with the operator that performed the lookup). *)

val col_index : t -> Attr.t -> int
(** Raises {!Unknown_attribute} for a foreign attribute. *)

val value : t -> Value.t array -> Attr.t -> Value.t
(** [value t row a] reads column [a] of a row of [t]. *)

val select_columns : t -> Attr.t list -> t
(** Keep (and reorder to) the given columns. *)

val map_column : t -> Attr.t -> (Value.t -> Value.t) -> t
(** Apply a function to one column of every row. *)

val append_rows : t -> Value.t array list -> t

val equal_bag : t -> t -> bool
(** Multiset equality up to row order and column order. *)

val byte_size : t -> int
(** Approximate size in bytes (used by cost accounting). *)

val pp : Format.formatter -> t -> unit
val to_string : ?limit:int -> t -> string
