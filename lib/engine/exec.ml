open Relalg

exception Exec_error of string

let err fmt = Format.kasprintf (fun s -> raise (Exec_error s)) fmt

type udf = Value.t list -> Value.t

type context = {
  tables : (string * Table.t) list;
  udfs : (string * udf) list;
  crypto : Enc_exec.ctx option;
}

let context ?(udfs = []) ?crypto tables = { tables; udfs; crypto }

(* Largest magnitude below which every integer-valued float is exactly
   one machine integer (2^53): under it, Int i and Float f that are
   equal under Value.equal share the canonical "N" encoding. Above it,
   Value.equal compares an Int through its float image, so the key does
   too — ints that collapse onto the same float share a bucket, which is
   sound because hash-path matches re-check the join predicate. *)
let exact_int_float = 9007199254740992.0 (* 2^53 *)

let float_key f =
  if Float.is_integer f && Float.abs f < exact_int_float then
    Printf.sprintf "N%d" (int_of_float f)
  else Printf.sprintf "F%h" f

let hash_key = function
  | Value.Enc c -> Printf.sprintf "E%s/%s/%s" c.Value.scheme c.Value.key_id c.Value.payload
  | Value.Int i ->
      if Float.abs (float_of_int i) < exact_int_float then
        Printf.sprintf "N%d" i
      else float_key (float_of_int i)
  | Value.Float f -> float_key f
  | Value.Str s -> "S" ^ s
  | Value.Date d -> Printf.sprintf "D%d" d
  | Value.Bool b -> if b then "B1" else "B0"
  | Value.Null -> "_"

let base ctx s =
  match List.assoc_opt s.Schema.name ctx.tables with
  | None -> err "unknown base relation %s" s.Schema.name
  | Some t ->
      let t = Table.select_columns t (Schema.attr_list s) in
      (* outsourced relations are served as stored: at-rest-encrypted
         columns come back as ciphertext *)
      let enc = Schema.stored_encrypted s in
      if Attr.Set.is_empty enc then t
      else
        match ctx.crypto with
        | None -> err "outsourced relation %s needs a crypto context" s.Schema.name
        | Some crypto ->
            Attr.Set.fold
              (fun a acc ->
                Table.map_column acc a (fun v -> Enc_exec.encrypt_value crypto a v))
              enc t

let project table attrs = Table.select_columns table (Attr.Set.elements attrs)

let select ?crypto table pred =
  let rows =
    List.filter (fun r -> Eval.predicate ?ctx:crypto table r pred) (Table.rows table)
  in
  Table.create (Table.attrs table) rows

let product l r =
  let attrs = Table.attrs l @ Table.attrs r in
  let rows =
    List.concat_map
      (fun rl -> List.map (fun rr -> Array.append rl rr) (Table.rows r))
      (Table.rows l)
  in
  Table.create attrs rows

(* Equality pairs usable for hashing: conjunctive (singleton-clause)
   atoms 'a = b' with one side in each operand. *)
let equi_pairs pred l r =
  let conjunctive = List.for_all (fun c -> List.length c = 1) pred in
  if not conjunctive then ([], pred)
  else
    let la = Attr.Set.of_list (Table.attrs l) in
    let ra = Attr.Set.of_list (Table.attrs r) in
    List.fold_left
      (fun (pairs, residual) clause ->
        match clause with
        | [ Predicate.Cmp_attr (a, Predicate.Eq, b) ]
          when Attr.Set.mem a la && Attr.Set.mem b ra ->
            ((a, b) :: pairs, residual)
        | [ Predicate.Cmp_attr (a, Predicate.Eq, b) ]
          when Attr.Set.mem b la && Attr.Set.mem a ra ->
            ((b, a) :: pairs, residual)
        | c -> (pairs, c :: residual))
      ([], []) pred
    |> fun (pairs, residual) -> (List.rev pairs, List.rev residual)

let join ?crypto pred l r =
  let attrs = Table.attrs l @ Table.attrs r in
  let pairs, _residual = equi_pairs pred l r in
  let combined_header = Table.create attrs [] in
  (* Hash-path matches re-check the whole predicate (equi clauses
     included), so the bucket key only has to be complete — any pair of
     rows equal on the keys must share a bucket — never collision-free.
     Rechecking keeps the hash path bit-identical to the nested loop
     even where the key encoding collapses distinct values. *)
  let keep combined = Eval.predicate ?ctx:crypto combined_header combined pred in
  let rows =
    match pairs with
    | [] ->
        (* nested loop *)
        List.concat_map
          (fun rl ->
            List.filter_map
              (fun rr ->
                let combined = Array.append rl rr in
                if keep combined then Some combined else None)
              (Table.rows r))
          (Table.rows l)
    | _ ->
        let lk = List.map (fun (a, _) -> Table.col_index l a) pairs in
        let rk = List.map (fun (_, b) -> Table.col_index r b) pairs in
        let key idxs row =
          String.concat "\x01" (List.map (fun i -> hash_key row.(i)) idxs)
        in
        let index = Hashtbl.create (Table.cardinality r) in
        List.iter
          (fun rr ->
            let has_null =
              List.exists (fun i -> Value.is_null rr.(i)) rk
            in
            if not has_null then
              Hashtbl.add index (key rk rr) rr)
          (Table.rows r);
        List.concat_map
          (fun rl ->
            if List.exists (fun i -> Value.is_null rl.(i)) lk then []
            else
              Hashtbl.find_all index (key lk rl)
              |> List.filter_map (fun rr ->
                     let combined = Array.append rl rr in
                     if keep combined then Some combined else None))
          (Table.rows l)
  in
  Table.create attrs rows

(* --- aggregation ----------------------------------------------------- *)

let numeric v =
  match Value.to_float v with
  | Some f -> f
  | None -> err "aggregate over non-numeric %s" (Value.to_string v)

let all_ints vs = List.for_all (function Value.Int _ -> true | _ -> false) vs

let aggregate ?crypto (agg : Aggregate.t) values =
  let non_null = List.filter (fun v -> not (Value.is_null v)) values in
  let encrypted = List.exists (function Value.Enc _ -> true | _ -> false) non_null in
  match agg.Aggregate.func with
  | Aggregate.Count_star -> Value.Int (List.length values)
  | Aggregate.Count a when encrypted -> (
      (* the output keeps the operand's (encrypted) profile entry: wrap
         the count under the operand's cluster so data matches profile *)
      match crypto with
      | Some c -> Enc_exec.encrypt_value c a (Value.Int (List.length non_null))
      | None -> err "encrypted count requires a crypto context")
  | Aggregate.Count _ -> Value.Int (List.length non_null)
  | Aggregate.Sum _ when encrypted -> (
      match crypto with
      | Some c -> Enc_exec.phe_sum c non_null ~avg:false
      | None -> err "encrypted sum requires a crypto context")
  | Aggregate.Avg _ when encrypted -> (
      match crypto with
      | Some c -> Enc_exec.phe_sum c non_null ~avg:true
      | None -> err "encrypted avg requires a crypto context")
  | Aggregate.Sum _ ->
      if non_null = [] then Value.Null
      else if all_ints non_null then
        Value.Int
          (List.fold_left
             (fun acc v -> acc + match v with Value.Int i -> i | _ -> 0)
             0 non_null)
      else Value.Float (List.fold_left (fun acc v -> acc +. numeric v) 0.0 non_null)
  | Aggregate.Avg _ ->
      if non_null = [] then Value.Null
      else
        Value.Float
          (List.fold_left (fun acc v -> acc +. numeric v) 0.0 non_null
          /. float_of_int (List.length non_null))
  | Aggregate.Min _ | Aggregate.Max _ -> (
      let order =
        match agg.Aggregate.func with Aggregate.Min _ -> -1 | _ -> 1
      in
      let better a b =
        match (a, b) with
        | Value.Enc ca, Value.Enc cb
          when ca.Value.scheme = "ope" && cb.Value.scheme = "ope" ->
            compare ca.Value.payload cb.Value.payload * order < 0
        | Value.Enc _, _ | _, Value.Enc _ ->
            err "min/max over non-OPE ciphertext"
        | _ -> ( try Value.compare a b * order < 0 with Value.Incomparable _ -> false)
      in
      match non_null with
      | [] -> Value.Null
      | first :: rest ->
          List.fold_left (fun best v -> if better v best then v else best) first rest)

let group_by ?crypto table keys aggs =
  let key_attrs = Attr.Set.elements keys in
  let key_idx = List.map (Table.col_index table) key_attrs in
  let groups = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun row ->
      let k = String.concat "\x01" (List.map (fun i -> hash_key row.(i)) key_idx) in
      match Hashtbl.find_opt groups k with
      | Some rows -> Hashtbl.replace groups k (row :: rows)
      | None ->
          Hashtbl.add groups k [ row ];
          order := k :: !order)
    (Table.rows table);
  let agg_outputs =
    List.filter
      (fun (a : Aggregate.t) -> not (Attr.Set.mem a.Aggregate.output keys))
      aggs
  in
  let out_attrs = key_attrs @ List.map (fun (a : Aggregate.t) -> a.Aggregate.output) agg_outputs in
  let rows =
    List.rev_map
      (fun k ->
        let rows = List.rev (Hashtbl.find groups k) in
        let first = List.hd rows in
        let key_vals = List.map (fun i -> first.(i)) key_idx in
        let agg_vals =
          List.map
            (fun (agg : Aggregate.t) ->
              let operand_values =
                match Aggregate.operand agg with
                | Some a ->
                    let i = Table.col_index table a in
                    List.map (fun r -> r.(i)) rows
                | None -> List.map (fun _ -> Value.Null) rows
              in
              aggregate ?crypto agg operand_values)
            agg_outputs
        in
        Array.of_list (key_vals @ agg_vals))
      !order
  in
  Table.create out_attrs rows

let udf_apply ctx name inputs output table =
  let f =
    match List.assoc_opt name ctx.udfs with
    | Some f -> f
    | None -> err "unregistered udf %s" name
  in
  let input_attrs = Attr.Set.elements inputs in
  let input_idx = List.map (Table.col_index table) input_attrs in
  let dropped = Attr.Set.remove output inputs in
  let out_attrs =
    List.filter (fun a -> not (Attr.Set.mem a dropped)) (Table.attrs table)
  in
  let out_pos = List.map (Table.col_index table) out_attrs in
  let out_index_of_output =
    let rec find i = function
      | [] -> err "udf output %s missing" (Attr.name output)
      | a :: _ when Attr.equal a output -> i
      | _ :: rest -> find (i + 1) rest
    in
    find 0 out_attrs
  in
  let rows =
    List.map
      (fun row ->
        let result = f (List.map (fun i -> row.(i)) input_idx) in
        let out = Array.of_list (List.map (fun i -> row.(i)) out_pos) in
        out.(out_index_of_output) <- result;
        out)
      (Table.rows table)
  in
  Table.create out_attrs rows

(* stable sort by the key list; OPE ciphertexts order by payload *)
let order_by table keys =
  let idx = List.map (fun (a, d) -> (Table.col_index table a, d)) keys in
  let cmp r1 r2 =
    let rec go = function
      | [] -> 0
      | (i, d) :: rest -> (
          let c =
            match (r1.(i), r2.(i)) with
            | Value.Enc c1, Value.Enc c2 ->
                String.compare c1.Value.payload c2.Value.payload
            | v1, v2 -> (
                try Value.compare v1 v2
                with Value.Incomparable _ ->
                  err "order_by over incomparable values")
          in
          let c = match d with Plan.Asc -> c | Plan.Desc -> -c in
          if c <> 0 then c else go rest)
    in
    go idx
  in
  Table.create (Table.attrs table) (List.stable_sort cmp (Table.rows table))

let limit table n =
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | r :: rest -> r :: take (k - 1) rest
  in
  Table.create (Table.attrs table) (take n (Table.rows table))

let crypt_column ctx ~encrypt attrs table =
  let crypto =
    match ctx.crypto with
    | Some c -> c
    | None -> err "plan contains crypto operators but no crypto context given"
  in
  Attr.Set.fold
    (fun a t ->
      Table.map_column t a (fun v ->
          if encrypt then Enc_exec.encrypt_value crypto a v
          else Enc_exec.decrypt_value crypto v))
    attrs table

let operator_tag plan =
  match Plan.node plan with
  | Plan.Base _ -> "base"
  | _ -> Plan.operator_name plan

let run_with_hook ctx ~hook plan =
  let rec go plan =
    let result =
      Obs.with_span ("exec." ^ operator_tag plan) @@ fun () ->
      match Plan.node plan with
      | Plan.Base s -> base ctx s
      | Plan.Project (attrs, c) -> project (go c) attrs
      | Plan.Select (pred, c) -> select ?crypto:ctx.crypto (go c) pred
      | Plan.Product (l, r) -> product (go l) (go r)
      | Plan.Join (pred, l, r) -> join ?crypto:ctx.crypto pred (go l) (go r)
      | Plan.Group_by (keys, aggs, c) ->
          group_by ?crypto:ctx.crypto (go c) keys aggs
      | Plan.Udf (name, inputs, output, c) ->
          udf_apply ctx name inputs output (go c)
      | Plan.Order_by (keys, c) -> order_by (go c) keys
      | Plan.Limit (n, c) -> limit (go c) n
      | Plan.Encrypt (attrs, c) -> crypt_column ctx ~encrypt:true attrs (go c)
      | Plan.Decrypt (attrs, c) -> crypt_column ctx ~encrypt:false attrs (go c)
    in
    if Obs.enabled () then begin
      Obs.incr "exec.operators";
      Obs.incr ~by:(Table.cardinality result) "exec.rows_out"
    end;
    hook plan result;
    result
  in
  go plan

let run ctx plan = run_with_hook ctx ~hook:(fun _ _ -> ()) plan
