open Relalg
module C = Mpq_crypto

exception Exec_error of string

let err fmt = Format.kasprintf (fun s -> raise (Exec_error s)) fmt

type udf = Value.t list -> Value.t

type context = {
  tables : (string * Table.t) list;
  udfs : (string * udf) list;
  crypto : Enc_exec.ctx option;
}

let context ?(udfs = []) ?crypto tables = { tables; udfs; crypto }

(* Largest magnitude below which every integer-valued float is exactly
   one machine integer (2^53): under it, Int i and Float f that are
   equal under Value.equal share the canonical "N" encoding. Above it,
   Value.equal compares an Int through its float image, so the key does
   too — ints that collapse onto the same float share a bucket, which is
   sound because hash-path matches re-check the join predicate. *)
let exact_int_float = 9007199254740992.0 (* 2^53 *)

let float_key f =
  if Float.is_integer f && Float.abs f < exact_int_float then
    Printf.sprintf "N%d" (int_of_float f)
  else Printf.sprintf "F%h" f

let hash_key = function
  | Value.Enc c -> Printf.sprintf "E%s/%s/%s" c.Value.scheme c.Value.key_id c.Value.payload
  | Value.Int i ->
      if Float.abs (float_of_int i) < exact_int_float then
        Printf.sprintf "N%d" i
      else float_key (float_of_int i)
  | Value.Float f -> float_key f
  | Value.Str s -> "S" ^ s
  | Value.Date d -> Printf.sprintf "D%d" d
  | Value.Bool b -> if b then "B1" else "B0"
  | Value.Null -> "_"

(* Chunked fan-out over a row list. Every parallel operator below is a
   pure function of (chunk contents, chunk start offset), so the
   concatenation of chunk results equals the sequential result for any
   chunking — the property the differential tests pin down. *)
let pmap_chunks pool ~f rows =
  match pool with
  | Some p -> Par.map_chunks p ~f rows
  | None -> ( match rows with [] -> [] | _ -> [ f 0 rows ])

let pconcat pool ~f rows = List.concat (pmap_chunks pool ~f rows)

(* Index-range fan-out over column batches; same determinism contract as
   [pmap_chunks] (results are a pure function of (range contents, range
   start)). *)
let pmap_ranges pool ~f n =
  match pool with
  | Some p -> Par.map_ranges p ~f n
  | None -> if n <= 0 then [] else [ f 0 n ]

(* --- per-column encryption (stored relations, Encrypt/Decrypt) ------- *)

(* Columnar batch encryption. Randomness is still rooted per (plan node,
   row index) — Enc_exec's pool pass replays the row-major draw order —
   so ciphertext bytes depend on the row's position, never on which
   domain (or in which order) the batch was processed. Untouched columns
   are shared, not copied. *)
let encrypt_columns crypto pool ~node attrs table =
  let enc_attrs = Attr.Set.elements attrs in
  let enc_idx = List.map (Table.col_index table) enc_attrs in
  let nrng = Enc_exec.node_rng crypto node in
  (* force the column layout on the coordinating domain before fan-out *)
  let cols = Table.columns table in
  let n = Table.cardinality table in
  let parts =
    pmap_ranges pool
      ~f:(fun start len ->
        Enc_exec.encrypt_batch crypto ~rng_root:nrng ~start
          ~enc:
            (List.map2
               (fun a i -> (a, Column.sub cols.(i) start len))
               enc_attrs enc_idx))
      n
  in
  let out = Array.copy cols in
  List.iteri
    (fun c_pos i ->
      out.(i) <- Column.concat (List.map (fun p -> List.nth p c_pos) parts))
    enc_idx;
  Table.of_columns (Table.attrs table) out

let decrypt_columns crypto pool attrs table =
  let idx = List.map (Table.col_index table) (Attr.Set.elements attrs) in
  let cols = Table.columns table in
  let n = Table.cardinality table in
  let out = Array.copy cols in
  List.iter
    (fun i ->
      let parts =
        pmap_ranges pool
          ~f:(fun start len ->
            Enc_exec.decrypt_batch crypto (Column.sub cols.(i) start len))
          n
      in
      out.(i) <- Column.concat parts)
    idx;
  Table.of_columns (Table.attrs table) out

let crypt ctx pool ~encrypt ~node attrs table =
  match ctx.crypto with
  | None -> err "plan contains crypto operators but no crypto context given"
  | Some crypto ->
      if encrypt then encrypt_columns crypto pool ~node attrs table
      else decrypt_columns crypto pool attrs table

(* --- row operators ---------------------------------------------------- *)

let base ctx pool ~node s =
  match List.assoc_opt s.Schema.name ctx.tables with
  | None -> err "unknown base relation %s" s.Schema.name
  | Some t ->
      (* force (and persistently cache) the stored table's column layout
         so projection shares columns and encryption runs its batch
         kernels without a transpose per query *)
      ignore (Table.columns t);
      let t = Table.select_columns t (Schema.attr_list s) in
      (* outsourced relations are served as stored: at-rest-encrypted
         columns come back as ciphertext *)
      let enc = Schema.stored_encrypted s in
      if Attr.Set.is_empty enc then t
      else
        match ctx.crypto with
        | None -> err "outsourced relation %s needs a crypto context" s.Schema.name
        | Some crypto -> encrypt_columns crypto pool ~node enc t

let project pool table attrs =
  let cols = Attr.Set.elements attrs in
  let idx = List.map (Table.col_index table) cols in
  let rows =
    pconcat pool
      ~f:(fun _ chunk ->
        List.map
          (fun r -> Array.of_list (List.map (fun i -> r.(i)) idx))
          chunk)
      (Table.rows table)
  in
  Table.create cols rows

let select ?crypto pool table pred =
  let rows =
    pconcat pool
      ~f:(fun _ chunk ->
        List.filter (fun r -> Eval.predicate ?ctx:crypto table r pred) chunk)
      (Table.rows table)
  in
  Table.create (Table.attrs table) rows

let product pool l r =
  let attrs = Table.attrs l @ Table.attrs r in
  let rrows = Table.rows r in
  let rows =
    pconcat pool
      ~f:(fun _ chunk ->
        List.concat_map
          (fun rl -> List.map (fun rr -> Array.append rl rr) rrows)
          chunk)
      (Table.rows l)
  in
  Table.create attrs rows

(* Equality pairs usable for hashing: conjunctive (singleton-clause)
   atoms 'a = b' with one side in each operand. *)
let equi_pairs pred l r =
  let conjunctive = List.for_all (fun c -> List.length c = 1) pred in
  if not conjunctive then ([], pred)
  else
    let la = Attr.Set.of_list (Table.attrs l) in
    let ra = Attr.Set.of_list (Table.attrs r) in
    List.fold_left
      (fun (pairs, residual) clause ->
        match clause with
        | [ Predicate.Cmp_attr (a, Predicate.Eq, b) ]
          when Attr.Set.mem a la && Attr.Set.mem b ra ->
            ((a, b) :: pairs, residual)
        | [ Predicate.Cmp_attr (a, Predicate.Eq, b) ]
          when Attr.Set.mem b la && Attr.Set.mem a ra ->
            ((b, a) :: pairs, residual)
        | c -> (pairs, c :: residual))
      ([], []) pred
    |> fun (pairs, residual) -> (List.rev pairs, List.rev residual)

let join ?crypto pool pred l r =
  let attrs = Table.attrs l @ Table.attrs r in
  let pairs, _residual = equi_pairs pred l r in
  let combined_header = Table.create attrs [] in
  (* Hash-path matches re-check the whole predicate (equi clauses
     included), so the bucket key only has to be complete — any pair of
     rows equal on the keys must share a bucket — never collision-free.
     Rechecking keeps the hash path bit-identical to the nested loop
     even where the key encoding collapses distinct values. *)
  let keep combined = Eval.predicate ?ctx:crypto combined_header combined pred in
  let rows =
    match pairs with
    | [] ->
        (* nested loop, fanned out over left-row chunks *)
        let rrows = Table.rows r in
        pconcat pool
          ~f:(fun _ chunk ->
            List.concat_map
              (fun rl ->
                List.filter_map
                  (fun rr ->
                    let combined = Array.append rl rr in
                    if keep combined then Some combined else None)
                  rrows)
              chunk)
          (Table.rows l)
    | _ -> (
        let lk = List.map (fun (a, _) -> Table.col_index l a) pairs in
        let rk = List.map (fun (_, b) -> Table.col_index r b) pairs in
        let key idxs row =
          String.concat "\x01" (List.map (fun i -> hash_key row.(i)) idxs)
        in
        let probe index rl =
          Hashtbl.find_all index (key lk rl)
          |> List.filter_map (fun rr ->
                 let combined = Array.append rl rr in
                 if keep combined then Some combined else None)
        in
        match pool with
        | Some p when Table.cardinality l + Table.cardinality r >= 64 ->
            (* Partitioned hash join. Same-key rows land in the same
               partition and keep their relative order inside it, so a
               probe sees exactly the matches (in the match order) the
               sequential single-table index would produce; tagging each
               output with its left row's original index and merging the
               partitions on that index restores the sequential
               left-row-major output order byte for byte. *)
            let nparts = 2 * Par.size p in
            let part_of k = Hashtbl.hash k mod nparts in
            let lparts = Array.make nparts []
            and rparts = Array.make nparts [] in
            List.iter
              (fun rr ->
                if not (List.exists (fun i -> Value.is_null rr.(i)) rk) then begin
                  let k = key rk rr in
                  let pi = part_of k in
                  rparts.(pi) <- rr :: rparts.(pi)
                end)
              (Table.rows r);
            List.iteri
              (fun li rl ->
                if not (List.exists (fun i -> Value.is_null rl.(i)) lk) then begin
                  let k = key lk rl in
                  let pi = part_of k in
                  lparts.(pi) <- (li, rl) :: lparts.(pi)
                end)
              (Table.rows l);
            let tasks =
              List.init nparts (fun pi () ->
                  let right = List.rev rparts.(pi) in
                  let index = Hashtbl.create (List.length right + 1) in
                  List.iter (fun rr -> Hashtbl.add index (key rk rr) rr) right;
                  List.rev_map (fun (li, rl) -> (li, probe index rl)) lparts.(pi))
            in
            Par.run_all p tasks
            |> List.fold_left
                 (List.merge (fun (i, _) (j, _) -> compare i j))
                 []
            |> List.concat_map snd
        | _ ->
            let index = Hashtbl.create (Table.cardinality r + 1) in
            List.iter
              (fun rr ->
                if not (List.exists (fun i -> Value.is_null rr.(i)) rk) then
                  Hashtbl.add index (key rk rr) rr)
              (Table.rows r);
            List.concat_map
              (fun rl ->
                if List.exists (fun i -> Value.is_null rl.(i)) lk then []
                else probe index rl)
              (Table.rows l))
  in
  Table.create attrs rows

(* --- aggregation ----------------------------------------------------- *)

let numeric v =
  match Value.to_float v with
  | Some f -> f
  | None -> err "aggregate over non-numeric %s" (Value.to_string v)

let all_ints vs = List.for_all (function Value.Int _ -> true | _ -> false) vs

let aggregate ?crypto ?rng (agg : Aggregate.t) values =
  let non_null = List.filter (fun v -> not (Value.is_null v)) values in
  let encrypted = List.exists (function Value.Enc _ -> true | _ -> false) non_null in
  match agg.Aggregate.func with
  | Aggregate.Count_star -> Value.Int (List.length values)
  | Aggregate.Count a when encrypted -> (
      (* the output keeps the operand's (encrypted) profile entry: wrap
         the count under the operand's cluster so data matches profile *)
      match crypto with
      | Some c -> Enc_exec.encrypt_value ?rng c a (Value.Int (List.length non_null))
      | None -> err "encrypted count requires a crypto context")
  | Aggregate.Count _ -> Value.Int (List.length non_null)
  | Aggregate.Sum _ when encrypted -> (
      match crypto with
      | Some c -> Enc_exec.phe_sum c non_null ~avg:false
      | None -> err "encrypted sum requires a crypto context")
  | Aggregate.Avg _ when encrypted -> (
      match crypto with
      | Some c -> Enc_exec.phe_sum c non_null ~avg:true
      | None -> err "encrypted avg requires a crypto context")
  | Aggregate.Sum _ ->
      if non_null = [] then Value.Null
      else if all_ints non_null then
        Value.Int
          (List.fold_left
             (fun acc v -> acc + match v with Value.Int i -> i | _ -> 0)
             0 non_null)
      else Value.Float (List.fold_left (fun acc v -> acc +. numeric v) 0.0 non_null)
  | Aggregate.Avg _ ->
      if non_null = [] then Value.Null
      else
        Value.Float
          (List.fold_left (fun acc v -> acc +. numeric v) 0.0 non_null
          /. float_of_int (List.length non_null))
  | Aggregate.Min _ | Aggregate.Max _ -> (
      let order =
        match agg.Aggregate.func with Aggregate.Min _ -> -1 | _ -> 1
      in
      let better a b =
        match (a, b) with
        | Value.Enc ca, Value.Enc cb
          when ca.Value.scheme = "ope" && cb.Value.scheme = "ope" ->
            Enc_exec.ope_compare ca cb * order < 0
        | Value.Enc _, _ | _, Value.Enc _ ->
            err "min/max over non-OPE ciphertext"
        | _ -> ( try Value.compare a b * order < 0 with Value.Incomparable _ -> false)
      in
      match non_null with
      | [] -> Value.Null
      | first :: rest ->
          List.fold_left (fun best v -> if better v best then v else best) first rest)

let group_by ?crypto pool ~node table keys aggs =
  let key_attrs = Attr.Set.elements keys in
  let key_idx = List.map (Table.col_index table) key_attrs in
  let row_key row =
    String.concat "\x01" (List.map (fun i -> hash_key row.(i)) key_idx)
  in
  (* phase 1 — partition rows into groups, chunks in parallel. Each chunk
     yields its groups in first-appearance order with rows in chunk
     order; the in-order merge then preserves both the global
     first-appearance order of keys and the original order of each
     group's rows, exactly as a single sequential pass would. *)
  let chunk_groups _ chunk =
    let tbl = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (fun row ->
        let k = row_key row in
        match Hashtbl.find_opt tbl k with
        | Some rs -> Hashtbl.replace tbl k (row :: rs)
        | None ->
            Hashtbl.add tbl k [ row ];
            order := k :: !order)
      chunk;
    List.rev_map (fun k -> (k, List.rev (Hashtbl.find tbl k))) !order
  in
  let groups =
    let chunked = pmap_chunks pool ~f:chunk_groups (Table.rows table) in
    let tbl = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (List.iter (fun (k, rs) ->
           match Hashtbl.find_opt tbl k with
           | Some acc -> Hashtbl.replace tbl k (rs :: acc)
           | None ->
               Hashtbl.add tbl k [ rs ];
               order := k :: !order))
      chunked;
    List.rev_map (fun k -> List.concat (List.rev (Hashtbl.find tbl k))) !order
  in
  let agg_outputs =
    List.filter
      (fun (a : Aggregate.t) -> not (Attr.Set.mem a.Aggregate.output keys))
      aggs
  in
  let agg_ops =
    List.map
      (fun (agg : Aggregate.t) ->
        (agg, Option.map (Table.col_index table) (Aggregate.operand agg)))
      agg_outputs
  in
  let out_attrs =
    key_attrs @ List.map (fun (a : Aggregate.t) -> a.Aggregate.output) agg_outputs
  in
  let nrng = Option.map (fun c -> Enc_exec.node_rng c node) crypto in
  (* phase 2 — one output row per group, fanned out over group chunks.
     Aggregates run over each group's complete row list (merged above,
     never partial per-chunk sums), so float accumulation order — and
     with it the result bytes — is independent of the chunking. *)
  let emit j rows =
    let first = List.hd rows in
    let key_vals = List.map (fun i -> first.(i)) key_idx in
    let rng = Option.map (fun r -> C.Prng.derive r j) nrng in
    let agg_vals =
      List.map
        (fun ((agg : Aggregate.t), operand_idx) ->
          let operand_values =
            match operand_idx with
            | Some i -> List.map (fun r -> r.(i)) rows
            | None -> List.map (fun _ -> Value.Null) rows
          in
          aggregate ?crypto ?rng agg operand_values)
        agg_ops
    in
    Array.of_list (key_vals @ agg_vals)
  in
  let rows =
    pconcat pool
      ~f:(fun start gs -> List.mapi (fun k g -> emit (start + k) g) gs)
      groups
  in
  Table.create out_attrs rows

let udf_apply ctx pool name inputs output table =
  let f =
    match List.assoc_opt name ctx.udfs with
    | Some f -> f
    | None -> err "unregistered udf %s" name
  in
  let input_attrs = Attr.Set.elements inputs in
  let input_idx = List.map (Table.col_index table) input_attrs in
  let dropped = Attr.Set.remove output inputs in
  let out_attrs =
    List.filter (fun a -> not (Attr.Set.mem a dropped)) (Table.attrs table)
  in
  let out_pos = List.map (Table.col_index table) out_attrs in
  let out_index_of_output =
    let rec find i = function
      | [] -> err "udf output %s missing" (Attr.name output)
      | a :: _ when Attr.equal a output -> i
      | _ :: rest -> find (i + 1) rest
    in
    find 0 out_attrs
  in
  let rows =
    pconcat pool
      ~f:(fun _ chunk ->
        List.map
          (fun row ->
            let result = f (List.map (fun i -> row.(i)) input_idx) in
            let out = Array.of_list (List.map (fun i -> row.(i)) out_pos) in
            out.(out_index_of_output) <- result;
            out)
          chunk)
      (Table.rows table)
  in
  Table.create out_attrs rows

(* stable sort by the key list; OPE ciphertexts order by payload.
   Parallel path: stable-sort chunks, then left-preferring merges —
   stable-sorted output is unique, so it matches the sequential sort. *)
let order_by pool table keys =
  let idx = List.map (fun (a, d) -> (Table.col_index table a, d)) keys in
  let cmp r1 r2 =
    let rec go = function
      | [] -> 0
      | (i, d) :: rest -> (
          let c =
            match (r1.(i), r2.(i)) with
            | Value.Enc c1, Value.Enc c2 ->
                if c1.Value.scheme = "ope" && c2.Value.scheme = "ope" then
                  (* order lives in the OPE prefix only; comparing whole
                     payloads would order tied-prefix strings by their
                     non-order-preserving det tails *)
                  Enc_exec.ope_compare c1 c2
                else String.compare c1.Value.payload c2.Value.payload
            | v1, v2 -> (
                try Value.compare v1 v2
                with Value.Incomparable _ ->
                  err "order_by over incomparable values")
          in
          let c = match d with Plan.Asc -> c | Plan.Desc -> -c in
          if c <> 0 then c else go rest)
    in
    go idx
  in
  let sorted =
    match pool with
    | Some p when Table.cardinality table > 128 ->
        Par.map_chunks p
          ~f:(fun _ chunk -> List.stable_sort cmp chunk)
          (Table.rows table)
        |> List.fold_left (fun acc l -> List.merge cmp acc l) []
    | _ -> List.stable_sort cmp (Table.rows table)
  in
  Table.create (Table.attrs table) sorted

let limit table n =
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | r :: rest -> r :: take (k - 1) rest
  in
  Table.create (Table.attrs table) (take n (Table.rows table))

let operator_tag plan =
  match Plan.node plan with
  | Plan.Base _ -> "base"
  | _ -> Plan.operator_name plan

(* Sub-plan result memoization hooks (multi-query work sharing).
   [lookup] may satisfy a whole subtree from a previous execution —
   sound only when the caller's key covers everything the subtree's
   bytes depend on (structure, preorder position when ciphertext is
   produced inside, key clusters, environment; see Serve.Service);
   [store] observes every computed subtree. Both may be called from
   worker domains concurrently when siblings run in parallel, so
   implementations must synchronize their own state. *)
type subplan_memo = {
  lookup : pos:int -> Plan.t -> Table.t option;
  store : pos:int -> Plan.t -> Table.t -> unit;
}

let run_with_hook ?pool ?memo ctx ~hook plan =
  (* Lazy key material (the Paillier pair) is generated under a lock in
     Keyring, so worker domains may trigger it on demand; no eager
     [Enc_exec.prepare_parallel] here — plans that never touch phe
     values must not pay the keygen. *)
  (* Execution first, hooks after: [go] returns the node's table plus the
     post-order (node, table) log of its subtree; the log is replayed
     sequentially on the calling domain once the plan has run. Hook
     invocation order is therefore the plan's post-order — the same
     whether siblings ran concurrently or not — and hooks may keep
     unsynchronized state. A memo hit contributes only its root to the
     log (the subtree was not executed here), so hook consumers are not
     combined with [?memo] — the serving layer, which uses the memo,
     runs hook-free. *)
  (* Encryption randomness is rooted per plan node (see
     [encrypt_columns]), but raw node ids come from a global counter:
     two structurally identical plans built at different times carry
     different ids. Executions must be reproducible from plan
     {e structure} — a re-planned copy of a cached query has to produce
     the same ciphertext bytes — so the rng label is the node's
     preorder position within the executing plan, not its allocation
     id. Positions are threaded through the traversal itself (not read
     off an id-keyed table): on a hash-consed DAG a node reachable from
     two parents occupies two positions, and an id lookup would give
     both occurrences the {e same} label — the last (previously) or
     first (now) visit's — diverging from the tree-planned oracle's
     ciphertext bytes (regression: test_dag.ml). *)
  let rec go pos plan =
    match memo with
    | Some m -> (
        match m.lookup ~pos plan with
        | Some t -> (t, [ (plan, t) ])
        | None -> compute pos plan)
    | None -> compute pos plan
  and compute pos plan =
    let result, logs =
      Obs.with_span ("exec." ^ operator_tag plan) @@ fun () ->
      (* flat per-operator timer (child recursion excluded), so the
         bench can report a per-operator breakdown without untangling
         the span tree *)
      let op f = Obs.time ("exec.op_s." ^ operator_tag plan) f in
      try
        match Plan.node plan with
        | Plan.Base s -> (op (fun () -> base ctx pool ~node:pos s), [])
        | Plan.Project (attrs, c) ->
            let t, lg = go (pos + 1) c in
            (op (fun () -> project pool t attrs), lg)
        | Plan.Select (pred, c) ->
            let t, lg = go (pos + 1) c in
            (op (fun () -> select ?crypto:ctx.crypto pool t pred), lg)
        | Plan.Product (l, r) ->
            let (tl, ll), (tr, lr) = both_go pos l r in
            (op (fun () -> product pool tl tr), ll @ lr)
        | Plan.Join (pred, l, r) ->
            let (tl, ll), (tr, lr) = both_go pos l r in
            (op (fun () -> join ?crypto:ctx.crypto pool pred tl tr), ll @ lr)
        | Plan.Group_by (keys, aggs, c) ->
            let t, lg = go (pos + 1) c in
            ( op (fun () ->
                  group_by ?crypto:ctx.crypto pool ~node:pos t keys aggs),
              lg )
        | Plan.Udf (name, inputs, output, c) ->
            let t, lg = go (pos + 1) c in
            (op (fun () -> udf_apply ctx pool name inputs output t), lg)
        | Plan.Order_by (keys, c) ->
            let t, lg = go (pos + 1) c in
            (op (fun () -> order_by pool t keys), lg)
        | Plan.Limit (n, c) ->
            let t, lg = go (pos + 1) c in
            (op (fun () -> limit t n), lg)
        | Plan.Encrypt (attrs, c) ->
            let t, lg = go (pos + 1) c in
            (op (fun () -> crypt ctx pool ~encrypt:true ~node:pos attrs t), lg)
        | Plan.Decrypt (attrs, c) ->
            let t, lg = go (pos + 1) c in
            (op (fun () -> crypt ctx pool ~encrypt:false ~node:pos attrs t), lg)
      with Table.Unknown_attribute { attr; columns } ->
        err "%s: unknown attribute %s (table columns: %s)" (operator_tag plan)
          attr
          (String.concat ", " columns)
    in
    if Obs.enabled () then begin
      Obs.incr "exec.operators";
      Obs.incr ~by:(Table.cardinality result) "exec.rows_out"
    end;
    (match memo with Some m -> m.store ~pos plan result | None -> ());
    (result, logs @ [ (plan, result) ])
  and both_go pos l r =
    let lpos = pos + 1 in
    let rpos = pos + 1 + Plan.size l in
    (* run sibling subplans on separate domains when both are real
       subtrees; trivial sides aren't worth a task *)
    match pool with
    | Some p when Plan.size l > 2 && Plan.size r > 2 ->
        Par.both p (fun () -> go lpos l) (fun () -> go rpos r)
    | _ ->
        let a = go lpos l in
        let b = go rpos r in
        (a, b)
  in
  let result, log = go 0 plan in
  List.iter (fun (n, t) -> hook n t) log;
  result

let run ?pool ?memo ctx plan =
  run_with_hook ?pool ?memo ctx ~hook:(fun _ _ -> ()) plan
