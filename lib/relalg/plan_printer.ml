let node_label (t : Plan.t) =
  match Plan.node t with
  | Base s -> Format.asprintf "%a" Schema.pp s
  | Project (attrs, _) -> Printf.sprintf "π %s" (Attr.Set.to_string attrs)
  | Select (pred, _) -> Printf.sprintf "σ %s" (Predicate.to_string pred)
  | Product _ -> "×"
  | Join (pred, _, _) -> Printf.sprintf "⋈ %s" (Predicate.to_string pred)
  | Group_by (keys, aggs, _) ->
      Printf.sprintf "γ %s%s"
        (Attr.Set.to_string keys)
        (match aggs with
        | [] -> ""
        | _ ->
            "," ^ String.concat ","
              (List.map (Format.asprintf "%a" Aggregate.pp) aggs))
  | Udf (name, inputs, output, _) ->
      Printf.sprintf "µ %s(%s)->%s" name
        (Attr.Set.to_string inputs)
        (Attr.name output)
  | Order_by (keys, _) ->
      Printf.sprintf "τ %s"
        (String.concat ","
           (List.map
              (fun (a, d) ->
                Attr.name a ^ match d with Plan.Asc -> "" | Plan.Desc -> "↓")
              keys))
  | Limit (n, _) -> Printf.sprintf "limit %d" n
  | Encrypt (attrs, _) -> Printf.sprintf "encrypt %s" (Attr.Set.to_string attrs)
  | Decrypt (attrs, _) -> Printf.sprintf "decrypt %s" (Attr.Set.to_string attrs)

let to_ascii ?(annot = fun _ -> None) plan =
  let buf = Buffer.create 256 in
  let rec go prefix is_last t =
    let branch = if prefix = "" then "" else if is_last then "└─ " else "├─ " in
    Buffer.add_string buf prefix;
    Buffer.add_string buf branch;
    Buffer.add_string buf (node_label t);
    (match annot t with
    | Some a ->
        Buffer.add_string buf "   ";
        Buffer.add_string buf a
    | None -> ());
    Buffer.add_char buf '\n';
    let cs = Plan.children t in
    let n = List.length cs in
    let child_prefix =
      if prefix = "" then "  "
      else prefix ^ (if is_last then "   " else "│  ")
    in
    List.iteri (fun i c -> go child_prefix (i = n - 1) c) cs
  in
  go "" true plan;
  Buffer.contents buf

let dot_escape s =
  String.concat ""
    (List.map
       (function
         | '"' -> "\\\"" | '\\' -> "\\\\" | '\n' -> "\\n" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let to_dot ?(annot = fun _ -> None) plan =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph plan {\n  node [fontname=\"monospace\"];\n";
  Plan.iter
    (fun n ->
      let label =
        match annot n with
        | Some a -> node_label n ^ "\\n" ^ a
        | None -> node_label n
      in
      let shape, style =
        match Plan.node n with
        | Base _ -> ("box", "")
        | Encrypt _ -> ("box", ",style=filled,fillcolor=gray80")
        | Decrypt _ -> ("box", ",style=filled,fillcolor=white")
        | _ -> ("ellipse", "")
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\",shape=%s%s];\n" (Plan.id n)
           (dot_escape label) shape style);
      List.iter
        (fun c ->
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d;\n" (Plan.id n) (Plan.id c)))
        (Plan.children n))
    plan;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
