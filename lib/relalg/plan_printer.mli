(** Rendering of query plans as ASCII trees and Graphviz dot.

    Both renderers accept an optional [annot] callback producing an extra
    per-node label (used by [authz] to attach profiles, candidate sets, or
    assignments to each node). *)

val to_ascii : ?annot:(Plan.t -> string option) -> Plan.t -> string
(** Indented tree, one node per line, children below their parent. *)

val to_dot : ?annot:(Plan.t -> string option) -> Plan.t -> string
(** Graphviz digraph with leaves as boxes, operations as ellipses,
    encryption as grey boxes (paper's visual convention). *)

val node_label : Plan.t -> string
(** One-line description of a node's operation, e.g. ["σ D='stroke'"]. *)
