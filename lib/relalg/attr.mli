(** Attribute identifiers.

    Attributes are globally-named columns of base or derived relations.
    The paper's running example uses one-letter names (S, B, D, T, C, P);
    TPC-H uses qualified names such as [l_extendedprice]. An attribute is
    just an interned name with total ordering, plus finite sets thereof. *)

type t

val make : string -> t
(** [make name] is the attribute named [name]. Names are case-sensitive
    and must be non-empty. *)

val name : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val pp : Format.formatter -> t -> unit

(** Finite sets of attributes, with the paper's compact rendering
    (attribute names concatenated when they are single letters,
    comma-separated otherwise). *)
module Set : sig
  include Stdlib.Set.S with type elt = t

  val of_names : string list -> t
  (** [of_names ["S"; "D"; "T"]] builds the set {S, D, T}. *)

  val pp : Format.formatter -> t -> unit

  val to_string : t -> string
end

module Map : Stdlib.Map.S with type key = t
