(** Runtime values flowing through the execution engine.

    Plaintext values are the usual SQL scalars. Ciphertext values carry the
    scheme that produced them and the identifier of the key cluster used
    (Def. 6.1 derives one key per equivalence cluster), so that the engine
    can check operation compatibility at run time. *)

type cipher = {
  scheme : string;  (** ["det"], ["rnd"], ["ope"] or ["phe"] *)
  key_id : string;  (** key-cluster identifier the value was encrypted under *)
  payload : string; (** opaque ciphertext; OPE payloads are order-preserving
                        fixed-width big-endian so byte comparison works *)
}

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Date of int  (** days since 1970-01-01 *)
  | Enc of cipher

val equal : t -> t -> bool
(** Structural equality. Two [Enc] values are equal iff scheme, key and
    payload coincide (meaningful for deterministic and OPE schemes). *)

val compare : t -> t -> int
(** SQL-flavoured ordering: [Null] first, numeric types compared by value
    (Int/Float mix allowed), [Enc] compared by payload bytes (meaningful
    for OPE ciphertexts). Raises [Incomparable] when the two runtime types
    cannot be meaningfully ordered. *)

exception Incomparable of t * t

val is_null : t -> bool
(** [is_null v] iff [v] is [Null] — use instead of polymorphic equality
    against [Null], which would silently pick up structural semantics for
    the other constructors. *)

val is_encrypted : t -> bool

val to_float : t -> float option
(** Numeric view of a plaintext value, if any. *)

val date_of_string : string -> t
(** [date_of_string "1995-03-15"] parses an ISO date. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
