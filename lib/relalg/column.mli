(** Typed column batches for columnar execution.

    A column holds one attribute's values across a batch of rows. When
    the column is homogeneous and null-free it is stored as an unboxed
    [int]/[float]/[bool]/[string] array, so per-scheme crypto kernels
    and scans iterate without allocating a {!Value.t} per cell; mixed,
    nullable or encrypted columns fall back to a plain [Value.t array].
    Conversions round-trip exactly: [get (of_values vs) i = vs.(i)]. *)

type t =
  | Ints of int array
  | Floats of float array
  | Bools of bool array
  | Strs of string array
  | Dates of int array
  | Values of Value.t array

val length : t -> int

val get : t -> int -> Value.t
(** [get c i] boxes cell [i]. No bounds promises beyond the arrays'. *)

val of_values : Value.t array -> t
(** Sniffs the element type in one pass; homogeneous null-free input
    gets a typed representation, anything else keeps the array as-is. *)

val to_values : t -> Value.t array
(** Boxing conversion; [Values] input is returned without copying (do
    not mutate the result in that case). *)

val sub : t -> int -> int -> t
(** [sub c pos len] — same contract as [Array.sub]. *)

val concat : t list -> t
(** Concatenates segments; keeps the typed representation when all
    segments share it, otherwise falls back to [Values]. *)

val is_unboxed : t -> bool
(** [true] for the typed (non-[Values]) representations. *)
