(* Typed column batches. A column stores a whole attribute's values for
   a batch of rows; homogeneous non-null columns use unboxed int / float
   / string arrays so per-scheme crypto kernels and scans run without
   boxing a Value per cell, while mixed, nullable or encrypted columns
   fall back to a plain Value array (zero-copy in both directions). *)

type t =
  | Ints of int array
  | Floats of float array
  | Bools of bool array
  | Strs of string array
  | Dates of int array
  | Values of Value.t array

let length = function
  | Ints a | Dates a -> Array.length a
  | Floats a -> Array.length a
  | Bools a -> Array.length a
  | Strs a -> Array.length a
  | Values a -> Array.length a

let get c i =
  match c with
  | Ints a -> Value.Int a.(i)
  | Floats a -> Value.Float a.(i)
  | Bools a -> Value.Bool a.(i)
  | Strs a -> Value.Str a.(i)
  | Dates a -> Value.Date a.(i)
  | Values a -> a.(i)

(* One type-sniffing pass; the typed representations are only used when
   the whole column is homogeneous and null-free, so [get] needs no null
   mask. The mixed fallback keeps the argument array itself. *)
let of_values (vs : Value.t array) =
  let n = Array.length vs in
  if n = 0 then Values vs
  else
    let uniform = ref true in
    let tag v =
      match v with
      | Value.Int _ -> 1
      | Value.Float _ -> 2
      | Value.Bool _ -> 3
      | Value.Str _ -> 4
      | Value.Date _ -> 5
      | Value.Null | Value.Enc _ -> 0
    in
    let t0 = tag vs.(0) in
    if t0 = 0 then Values vs
    else begin
      (try
         for i = 1 to n - 1 do
           if tag vs.(i) <> t0 then begin
             uniform := false;
             raise Exit
           end
         done
       with Exit -> ());
      if not !uniform then Values vs
      else
        match t0 with
        | 1 ->
            Ints
              (Array.map
                 (function Value.Int i -> i | _ -> assert false)
                 vs)
        | 2 ->
            Floats
              (Array.map
                 (function Value.Float f -> f | _ -> assert false)
                 vs)
        | 3 ->
            Bools
              (Array.map
                 (function Value.Bool b -> b | _ -> assert false)
                 vs)
        | 4 ->
            Strs
              (Array.map
                 (function Value.Str s -> s | _ -> assert false)
                 vs)
        | _ ->
            Dates
              (Array.map
                 (function Value.Date d -> d | _ -> assert false)
                 vs)
    end

let to_values = function
  | Values a -> a
  | c -> Array.init (length c) (get c)

let sub c pos len =
  match c with
  | Ints a -> Ints (Array.sub a pos len)
  | Floats a -> Floats (Array.sub a pos len)
  | Bools a -> Bools (Array.sub a pos len)
  | Strs a -> Strs (Array.sub a pos len)
  | Dates a -> Dates (Array.sub a pos len)
  | Values a -> Values (Array.sub a pos len)

(* Concatenate segments of the same underlying type; falls back to a
   Value array when segment types disagree (e.g. a chunk boundary split
   a column into differently-sniffed parts). *)
let concat = function
  | [] -> Values [||]
  | [ c ] -> c
  | first :: _ as segs -> (
      let same_shape =
        let shape = function
          | Ints _ -> 1
          | Floats _ -> 2
          | Bools _ -> 3
          | Strs _ -> 4
          | Dates _ -> 5
          | Values _ -> 6
        in
        let s0 = shape first in
        List.for_all (fun c -> shape c = s0) segs
      in
      if not same_shape then
        Values
          (Array.concat (List.map to_values segs))
      else
        match first with
        | Ints _ ->
            Ints
              (Array.concat
                 (List.map (function Ints a -> a | _ -> assert false) segs))
        | Floats _ ->
            Floats
              (Array.concat
                 (List.map (function Floats a -> a | _ -> assert false) segs))
        | Bools _ ->
            Bools
              (Array.concat
                 (List.map (function Bools a -> a | _ -> assert false) segs))
        | Strs _ ->
            Strs
              (Array.concat
                 (List.map (function Strs a -> a | _ -> assert false) segs))
        | Dates _ ->
            Dates
              (Array.concat
                 (List.map (function Dates a -> a | _ -> assert false) segs))
        | Values _ ->
            Values
              (Array.concat
                 (List.map (function Values a -> a | _ -> assert false) segs)))

let is_unboxed = function Values _ -> false | _ -> true
