type column_type = Tint | Tfloat | Tstring | Tdate | Tbool

type storage =
  | At_authority
  | Outsourced of { host : string; encrypted : Attr.Set.t }

type t = {
  name : string;
  owner : string;
  columns : (Attr.t * column_type) list;
  storage : storage;
}

let outsourced ~host ~encrypted =
  Outsourced { host; encrypted = Attr.Set.of_names encrypted }

let make ~name ~owner ?(storage = At_authority) cols =
  let columns = List.map (fun (n, ty) -> (Attr.make n, ty)) cols in
  let names = List.map fst columns in
  let distinct = List.sort_uniq Attr.compare names in
  if List.length distinct <> List.length names then
    invalid_arg (Printf.sprintf "Schema.make %s: duplicate column" name);
  (match storage with
  | At_authority -> ()
  | Outsourced { encrypted; _ } ->
      let unknown =
        Attr.Set.diff encrypted (Attr.Set.of_list names)
      in
      if not (Attr.Set.is_empty unknown) then
        invalid_arg
          (Printf.sprintf "Schema.make %s: storage mentions unknown columns %s"
             name
             (Attr.Set.to_string unknown)));
  { name; owner; columns; storage }

let attrs t = Attr.Set.of_list (List.map fst t.columns)
let attr_list t = List.map fst t.columns
let arity t = List.length t.columns
let mem t a = List.exists (fun (b, _) -> Attr.equal a b) t.columns
let type_of t a = List.assoc_opt a t.columns

let stored_encrypted t =
  match t.storage with
  | At_authority -> Attr.Set.empty
  | Outsourced { encrypted; _ } -> encrypted

let host_name t =
  match t.storage with
  | At_authority -> t.owner
  | Outsourced { host; _ } -> host

let pp fmt t =
  Format.fprintf fmt "%s@%s%s(%s)" t.name t.owner
    (match t.storage with
    | At_authority -> ""
    | Outsourced { host; encrypted } ->
        Printf.sprintf "->%s[%s]" host (Attr.Set.to_string encrypted))
    (String.concat ", " (List.map (fun (a, _) -> Attr.name a) t.columns))
