type op = Eq | Neq | Lt | Le | Gt | Ge
type capability = Needs_equality | Needs_order | Needs_plaintext

type atom =
  | Cmp_const of Attr.t * op * Value.t
  | Cmp_attr of Attr.t * op * Attr.t
  | In_list of Attr.t * Value.t list
  | Like of Attr.t * string

type clause = atom list
type t = clause list

let conj atoms = List.map (fun a -> [ a ]) atoms
let atoms t = List.concat t

let attrs_of_atom = function
  | Cmp_const (a, _, _) | In_list (a, _) | Like (a, _) -> [ a ]
  | Cmp_attr (a, _, b) -> [ a; b ]

let attrs t = Attr.Set.of_list (List.concat_map attrs_of_atom (atoms t))

let attr_pairs t =
  List.filter_map
    (function Cmp_attr (a, _, b) -> Some (a, b) | _ -> None)
    (atoms t)

let const_attrs t =
  Attr.Set.of_list
    (List.filter_map
       (function
         | Cmp_const (a, _, _) | In_list (a, _) | Like (a, _) -> Some a
         | Cmp_attr _ -> None)
       (atoms t))

let capability_of_op = function
  | Eq | Neq -> Needs_equality
  | Lt | Le | Gt | Ge -> Needs_order

let capability_of_atom = function
  | Cmp_const (_, op, _) | Cmp_attr (_, op, _) -> capability_of_op op
  | In_list _ -> Needs_equality
  | Like _ -> Needs_plaintext

let negate_op = function
  | Eq -> Neq
  | Neq -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

let op_string = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let pp_op fmt op = Format.pp_print_string fmt (op_string op)

let pp_atom fmt = function
  | Cmp_const (a, op, v) ->
      Format.fprintf fmt "%a%s%a" Attr.pp a (op_string op) Value.pp v
  | Cmp_attr (a, op, b) ->
      Format.fprintf fmt "%a%s%a" Attr.pp a (op_string op) Attr.pp b
  | In_list (a, vs) ->
      Format.fprintf fmt "%a IN (%s)" Attr.pp a
        (String.concat "," (List.map Value.to_string vs))
  | Like (a, pat) -> Format.fprintf fmt "%a LIKE %S" Attr.pp a pat

let pp_clause fmt = function
  | [ a ] -> pp_atom fmt a
  | c ->
      Format.fprintf fmt "(%s)"
        (String.concat " OR "
           (List.map (Format.asprintf "%a" pp_atom) c))

let pp fmt t =
  match t with
  | [] -> Format.pp_print_string fmt "true"
  | _ ->
      Format.pp_print_string fmt
        (String.concat " AND "
           (List.map (Format.asprintf "%a" pp_clause) t))

let to_string t = Format.asprintf "%a" pp t

(* Classic two-pointer LIKE matcher with backtracking on '%'. *)
let like_matches ~pattern s =
  let np = String.length pattern and ns = String.length s in
  let rec go pi si star_p star_s =
    if si = ns then
      let rec only_pct i = i >= np || (pattern.[i] = '%' && only_pct (i + 1)) in
      only_pct pi
    else if pi < np && pattern.[pi] = '%' then go (pi + 1) si (pi + 1) si
    else if pi < np && (pattern.[pi] = '_' || pattern.[pi] = s.[si]) then
      go (pi + 1) (si + 1) star_p star_s
    else if star_p >= 0 then go star_p (star_s + 1) star_p (star_s + 1)
    else false
  in
  go 0 0 (-1) (-1)
