(** Base-relation schemas.

    A base relation has a name, the data authority that controls it (the
    paper assumes each source relation is stored at its authority), and an
    ordered list of attributes with declared column types. *)

type column_type = Tint | Tfloat | Tstring | Tdate | Tbool

(** Where the relation physically lives. The paper's Sec. 9 extension:
    a source relation may be stored, possibly in encrypted form, at a
    third party rather than at its data authority. [host] names the
    storing subject (typically a provider); [encrypted] lists the
    columns kept encrypted at rest (the authority holds the keys). *)
type storage =
  | At_authority
  | Outsourced of { host : string; encrypted : Attr.Set.t }

type t = {
  name : string;
  owner : string;  (** name of the controlling data authority *)
  columns : (Attr.t * column_type) list;
  storage : storage;
}

val make :
  name:string ->
  owner:string ->
  ?storage:storage ->
  (string * column_type) list ->
  t
(** [make ~name ~owner cols] builds a schema; raises [Invalid_argument]
    on duplicate column names, or when [storage] mentions unknown
    columns. Default storage is [At_authority]. *)

val outsourced : host:string -> encrypted:string list -> storage

val stored_encrypted : t -> Attr.Set.t
(** Columns encrypted at rest (empty for authority-stored relations). *)

val host_name : t -> string
(** The storing subject: the host when outsourced, the owner otherwise. *)

val attrs : t -> Attr.Set.t
val attr_list : t -> Attr.t list
val arity : t -> int

val mem : t -> Attr.t -> bool
val type_of : t -> Attr.t -> column_type option

val pp : Format.formatter -> t -> unit
