(** Query plans.

    A query plan is a tree whose leaves are base relations and whose
    internal nodes are relational operations (Sec. 1). Plans may
    additionally contain the on-the-fly [Encrypt]/[Decrypt] operations
    that extended plans inject (Sec. 5). Every node carries a unique
    integer id used by assignment functions and cost tables. *)

type node =
  | Base of Schema.t
  | Project of Attr.Set.t * t
  | Select of Predicate.t * t
  | Product of t * t
  | Join of Predicate.t * t * t
  | Group_by of Attr.Set.t * Aggregate.t list * t
      (** [Group_by (keys, aggs, child)]; [aggs = []] models duplicate
          elimination over [keys]. *)
  | Udf of string * Attr.Set.t * Attr.t * t
      (** [Udf (name, inputs, output, child)]: procedural computation
          µ_{A,a} reading [inputs] and producing [output], which must be
          named after one of the inputs (paper convention). *)
  | Order_by of (Attr.t * sort_dir) list * t
      (** Sorting — outside the paper's algebra but present in the
          PostgreSQL plans it consumes; profiled like a grouping (the
          ordering leaks value relations on the sort keys). *)
  | Limit of int * t  (** top-k cut; no informational content of its own *)
  | Encrypt of Attr.Set.t * t
  | Decrypt of Attr.Set.t * t

and sort_dir = Asc | Desc

and t = private { id : int; node : node }

(** {1 Construction}

    Smart constructors allocate fresh node ids and check arity/schema
    constraints, raising [Invalid_argument] on violations. *)

val base : Schema.t -> t
val project : Attr.Set.t -> t -> t
val select : Predicate.t -> t -> t
val product : t -> t -> t
val join : Predicate.t -> t -> t -> t
val group_by : Attr.Set.t -> Aggregate.t list -> t -> t
val udf : string -> Attr.Set.t -> Attr.t -> t -> t
val order_by : (Attr.t * sort_dir) list -> t -> t
val limit : int -> t -> t
val encrypt : Attr.Set.t -> t -> t
val decrypt : Attr.Set.t -> t -> t

(** {1 Observation} *)

val id : t -> int
val node : t -> node
val children : t -> t list

val schema : t -> Attr.Set.t
(** Visible attributes of the relation the node produces. *)

val is_leaf : t -> bool
val size : t -> int
(** Number of nodes. *)

val height : t -> int

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over all nodes. *)

val iter : (t -> unit) -> t -> unit
val nodes : t -> t list
(** All nodes in post-order (children before parents). *)

val find : t -> int -> t option
(** Find a node by id. *)

val descendants : t -> t -> bool
(** [descendants t n] is [true] when [n] occurs in [t]'s subtree
    (including [t] itself). *)

val base_relations : t -> Schema.t list
val operator_name : t -> string

val strip_crypto : t -> t
(** Remove all [Encrypt]/[Decrypt] nodes, recovering the original plan of
    an extended plan (Def. 5.1). Fresh ids are allocated. *)

val equal_shape : t -> t -> bool
(** Structural equality ignoring node ids. *)

val with_children : t -> t list -> t
(** Rebuild the node over replacement children (fresh id, invariants
    re-checked). Raises [Invalid_argument] on arity mismatch. Used by
    the hash-consing DAG store to splice shared subtrees in place. *)

val preorder_positions : t -> (int, int) Hashtbl.t
(** Preorder position (root = 0) of every node, keyed by allocation id.
    Positions are a function of plan {e structure} only, so two builds
    of the same query agree — the canonical node numbering used by
    execution randomness and verifier diagnostics.

    On a hash-consed DAG (where one node is reachable from several
    parents) an id-keyed table records only the {e first} (leftmost)
    occurrence's position, while the numbering itself still advances
    exactly as in the equivalent tree. Consumers that must label every
    occurrence — the executor's per-position ciphertext randomness —
    thread positions through their own traversal with
    {!child_positions} instead of looking ids up here. *)

val child_positions : t -> int -> (t * int) list
(** [child_positions n pos] pairs each child of [n] with its preorder
    position, given that this {e occurrence} of [n] sits at [pos]:
    child [i] is at [pos + 1 + Σ_{j<i} size child_j]. Pure occurrence
    arithmetic, sound on shared-node DAGs. *)
