(** Selection and join conditions.

    Conditions are Boolean formulas over basic comparisons, kept in
    conjunctive normal form: a predicate is a conjunction of clauses, each
    clause a disjunction of atoms. The paper's two atom shapes are
    [a op x] (attribute versus constant) and [a_i op a_j] (attribute versus
    attribute, which induces an equivalence between the two attributes in
    relation profiles). *)

type op = Eq | Neq | Lt | Le | Gt | Ge

(** Capability an encryption scheme must offer to evaluate an atom over
    ciphertext (see {!Scheme} in [mpq_crypto]): equality tests need
    deterministic encryption, order tests need OPE, pattern matching and
    arithmetic need plaintext. *)
type capability = Needs_equality | Needs_order | Needs_plaintext

type atom =
  | Cmp_const of Attr.t * op * Value.t  (** [a op x] *)
  | Cmp_attr of Attr.t * op * Attr.t  (** [a_i op a_j] *)
  | In_list of Attr.t * Value.t list  (** [a IN (v1, ..., vn)] *)
  | Like of Attr.t * string  (** SQL LIKE with [%] and [_] wildcards *)

(** A clause is a disjunction of atoms; [[]] is false. *)
type clause = atom list

(** A predicate is a conjunction of clauses; [[]] is true. *)
type t = clause list

val conj : atom list -> t
(** A pure conjunction of atoms (each atom its own clause). *)

val atoms : t -> atom list
val attrs : t -> Attr.Set.t

val attr_pairs : t -> (Attr.t * Attr.t) list
(** All [(a_i, a_j)] pairs compared by some atom; these become equivalence
    sets in the result profile (Fig. 2). *)

val const_attrs : t -> Attr.Set.t
(** Attributes compared with a constant (they become implicit attributes
    in the result profile). *)

val capability_of_atom : atom -> capability

val negate_op : op -> op
val pp_op : Format.formatter -> op -> unit
val pp_atom : Format.formatter -> atom -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val like_matches : pattern:string -> string -> bool
(** SQL LIKE matching ([%] = any sequence, [_] = any single char). *)
