(** Aggregate functions for group-by nodes.

    Following the paper's convention, the attribute produced by [f(a)]
    keeps the name of [a] (Sec. 3.2, footnote 1); [Count_star] produces a
    fresh attribute whose name the caller supplies. *)

type func =
  | Count_star
  | Count of Attr.t
  | Sum of Attr.t
  | Avg of Attr.t
  | Min of Attr.t
  | Max of Attr.t

type t = { func : func; output : Attr.t }

val make : func -> t
(** [make f] names the output after the operand attribute; for
    [Count_star] the output is the attribute ["count"]. *)

val make_named : func -> string -> t

val operand : t -> Attr.t option
(** The attribute the aggregate reads, if any ([Count_star] reads none). *)

val needs_plaintext : t -> bool
(** [Sum] and [Avg] can run over additively homomorphic ciphertext;
    [Min]/[Max] over OPE; [Count]/[Count_star] over anything. Returns
    [true] only for aggregates no available scheme supports (none here,
    the planner refines this per scheme). *)

val pp : Format.formatter -> t -> unit
