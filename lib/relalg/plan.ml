type node =
  | Base of Schema.t
  | Project of Attr.Set.t * t
  | Select of Predicate.t * t
  | Product of t * t
  | Join of Predicate.t * t * t
  | Group_by of Attr.Set.t * Aggregate.t list * t
  | Udf of string * Attr.Set.t * Attr.t * t
  | Order_by of (Attr.t * sort_dir) list * t
  | Limit of int * t
  | Encrypt of Attr.Set.t * t
  | Decrypt of Attr.Set.t * t

and sort_dir = Asc | Desc

and t = { id : int; node : node }

(* Atomic: plans are built concurrently (parallel planning sweeps run
   one query per domain), and ids must stay unique across domains. *)
let counter = Atomic.make 0

let fresh node = { id = Atomic.fetch_and_add counter 1 + 1; node }

let id t = t.id
let node t = t.node

let children t =
  match t.node with
  | Base _ -> []
  | Project (_, c)
  | Select (_, c)
  | Group_by (_, _, c)
  | Udf (_, _, _, c)
  | Order_by (_, c)
  | Limit (_, c)
  | Encrypt (_, c)
  | Decrypt (_, c) ->
      [ c ]
  | Product (l, r) | Join (_, l, r) -> [ l; r ]

let rec schema t =
  match t.node with
  | Base s -> Schema.attrs s
  | Project (attrs, _) -> attrs
  | Select (_, c) -> schema c
  | Product (l, r) | Join (_, l, r) -> Attr.Set.union (schema l) (schema r)
  | Group_by (keys, aggs, _) ->
      List.fold_left
        (fun acc (agg : Aggregate.t) -> Attr.Set.add agg.output acc)
        keys aggs
  | Udf (_, inputs, output, c) ->
      Attr.Set.add output
        (Attr.Set.diff (schema c) (Attr.Set.remove output inputs))
  | Order_by (_, c) | Limit (_, c) -> schema c
  | Encrypt (_, c) | Decrypt (_, c) -> schema c

let check_subset ~what needed available =
  if not (Attr.Set.subset needed available) then
    invalid_arg
      (Printf.sprintf "Plan.%s: attributes %s not in operand schema %s" what
         (Attr.Set.to_string (Attr.Set.diff needed available))
         (Attr.Set.to_string available))

let base s = fresh (Base s)

let project attrs child =
  check_subset ~what:"project" attrs (schema child);
  if Attr.Set.is_empty attrs then invalid_arg "Plan.project: empty projection";
  fresh (Project (attrs, child))

let select pred child =
  check_subset ~what:"select" (Predicate.attrs pred) (schema child);
  fresh (Select (pred, child))

let check_disjoint_operands ~what l r =
  let common = Attr.Set.inter (schema l) (schema r) in
  if not (Attr.Set.is_empty common) then
    invalid_arg
      (Printf.sprintf "Plan.%s: operand schemas share attributes %s" what
         (Attr.Set.to_string common))

let product l r =
  check_disjoint_operands ~what:"product" l r;
  fresh (Product (l, r))

let join pred l r =
  check_disjoint_operands ~what:"join" l r;
  check_subset ~what:"join" (Predicate.attrs pred)
    (Attr.Set.union (schema l) (schema r));
  if Predicate.attr_pairs pred = [] then
    invalid_arg "Plan.join: condition compares no attribute pair";
  fresh (Join (pred, l, r))

let group_by keys aggs child =
  let sch = schema child in
  check_subset ~what:"group_by" keys sch;
  List.iter
    (fun (agg : Aggregate.t) ->
      match Aggregate.operand agg with
      | Some a -> check_subset ~what:"group_by aggregate" (Attr.Set.singleton a) sch
      | None -> ())
    aggs;
  fresh (Group_by (keys, aggs, child))

let udf name inputs output child =
  check_subset ~what:"udf" inputs (schema child);
  if Attr.Set.is_empty inputs then invalid_arg "Plan.udf: no input attributes";
  if not (Attr.Set.mem output inputs) then
    invalid_arg "Plan.udf: output must be named after one of the inputs";
  fresh (Udf (name, inputs, output, child))

let order_by keys child =
  if keys = [] then invalid_arg "Plan.order_by: no sort keys";
  check_subset ~what:"order_by"
    (Attr.Set.of_list (List.map fst keys))
    (schema child);
  fresh (Order_by (keys, child))

let limit n child =
  if n < 0 then invalid_arg "Plan.limit: negative";
  fresh (Limit (n, child))

let encrypt attrs child =
  check_subset ~what:"encrypt" attrs (schema child);
  if Attr.Set.is_empty attrs then child
  else fresh (Encrypt (attrs, child))

let decrypt attrs child =
  check_subset ~what:"decrypt" attrs (schema child);
  if Attr.Set.is_empty attrs then child
  else fresh (Decrypt (attrs, child))

let is_leaf t = match t.node with Base _ -> true | _ -> false

(* Rebuild one node over replacement children (through the smart
   constructors, so schema/arity invariants are re-checked and a fresh
   id is allocated). The hash-consing DAG store uses this to splice
   canonical shared subtrees under existing operators. *)
let with_children t cs =
  match (t.node, cs) with
  | Base _, [] -> t
  | Project (a, _), [ c ] -> project a c
  | Select (p, _), [ c ] -> select p c
  | Product _, [ l; r ] -> product l r
  | Join (p, _, _), [ l; r ] -> join p l r
  | Group_by (k, ag, _), [ c ] -> group_by k ag c
  | Udf (n, i, o, _), [ c ] -> udf n i o c
  | Order_by (k, _), [ c ] -> order_by k c
  | Limit (n, _), [ c ] -> limit n c
  | Encrypt (a, _), [ c ] -> encrypt a c
  | Decrypt (a, _), [ c ] -> decrypt a c
  | _ ->
      invalid_arg
        (Printf.sprintf "Plan.with_children: %s given %d children"
           (match t.node with Base s -> s.Schema.name | _ -> "operator")
           (List.length cs))

let rec fold f acc t = List.fold_left (fold f) (f acc t) (children t)
let iter f t = fold (fun () n -> f n) () t
let size t = fold (fun n _ -> n + 1) 0 t

let rec height t =
  match children t with
  | [] -> 1
  | cs -> 1 + List.fold_left (fun m c -> max m (height c)) 0 cs

let nodes t =
  (* post-order: children first *)
  let rec go acc t = t :: List.fold_left go acc (List.rev (children t)) in
  List.rev (go [] t)

let find t i = fold (fun acc n -> if n.id = i then Some n else acc) None t
let descendants t n = fold (fun acc m -> acc || m.id = n.id) false t

let base_relations t =
  List.filter_map
    (fun n -> match n.node with Base s -> Some s | _ -> None)
    (nodes t)

let operator_name t =
  match t.node with
  | Base s -> s.Schema.name
  | Project _ -> "project"
  | Select _ -> "select"
  | Product _ -> "product"
  | Join _ -> "join"
  | Group_by _ -> "group_by"
  | Udf (name, _, _, _) -> "udf:" ^ name
  | Order_by _ -> "order_by"
  | Limit _ -> "limit"
  | Encrypt _ -> "encrypt"
  | Decrypt _ -> "decrypt"

let rec strip_crypto t =
  match t.node with
  | Base s -> base s
  | Project (a, c) -> project a (strip_crypto c)
  | Select (p, c) -> select p (strip_crypto c)
  | Product (l, r) -> product (strip_crypto l) (strip_crypto r)
  | Join (p, l, r) -> join p (strip_crypto l) (strip_crypto r)
  | Group_by (k, ag, c) -> group_by k ag (strip_crypto c)
  | Udf (n, i, o, c) -> udf n i o (strip_crypto c)
  | Order_by (k, c) -> order_by k (strip_crypto c)
  | Limit (n, c) -> limit n (strip_crypto c)
  | Encrypt (_, c) | Decrypt (_, c) -> strip_crypto c

let rec equal_shape a b =
  match (a.node, b.node) with
  | Base s1, Base s2 -> s1 = s2
  | Project (x, c1), Project (y, c2) -> Attr.Set.equal x y && equal_shape c1 c2
  | Select (p1, c1), Select (p2, c2) -> p1 = p2 && equal_shape c1 c2
  | Product (l1, r1), Product (l2, r2) ->
      equal_shape l1 l2 && equal_shape r1 r2
  | Join (p1, l1, r1), Join (p2, l2, r2) ->
      p1 = p2 && equal_shape l1 l2 && equal_shape r1 r2
  | Group_by (k1, a1, c1), Group_by (k2, a2, c2) ->
      Attr.Set.equal k1 k2 && a1 = a2 && equal_shape c1 c2
  | Udf (n1, i1, o1, c1), Udf (n2, i2, o2, c2) ->
      n1 = n2 && Attr.Set.equal i1 i2 && Attr.equal o1 o2 && equal_shape c1 c2
  | Order_by (k1, c1), Order_by (k2, c2) -> k1 = k2 && equal_shape c1 c2
  | Limit (n1, c1), Limit (n2, c2) -> n1 = n2 && equal_shape c1 c2
  | Encrypt (x, c1), Encrypt (y, c2) | Decrypt (x, c1), Decrypt (y, c2) ->
      Attr.Set.equal x y && equal_shape c1 c2
  | _ -> false

(* Raw node ids come from a global allocation counter, so two builds of
   the same query carry different ids. Consumers that must be stable
   across rebuilds (the executor's ciphertext randomness, the verifier's
   diagnostics) key on the node's preorder position instead. *)
let preorder_positions t =
  let tbl = Hashtbl.create 64 in
  let next = ref 0 in
  let rec visit p =
    (* First visit wins. On trees every id is visited once; on a
       hash-consed DAG a shared node is reached once per parent, and
       an id-keyed table can only record one of its occurrence
       positions — so consumers that must label every {e occurrence}
       (the executor's ciphertext randomness) thread positions through
       their own traversal instead ({!child_positions}). Keeping the first
       (leftmost) occurrence makes the one recorded position stable
       rather than traversal-order dependent. *)
    if not (Hashtbl.mem tbl p.id) then begin
      Hashtbl.add tbl p.id !next;
      incr next;
      List.iter visit (children p)
    end
    else
      (* the subtree below a shared node still advances the counter
         once per occurrence, as in the equivalent tree *)
      next := !next + size p
  in
  visit t;
  tbl

(* Per-occurrence preorder arithmetic: the position of child [i] is its
   parent's position + 1 + the (occurrence-counting) sizes of the
   earlier siblings' subtrees. A pure function of structure, valid on
   DAGs — the caller supplies the occurrence's own position. *)
let child_positions t pos =
  let _, rev =
    List.fold_left
      (fun (p, acc) c -> (p + size c, (c, p) :: acc))
      (pos + 1, []) (children t)
  in
  List.rev rev
