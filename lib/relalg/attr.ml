type t = string

let make name =
  if String.length name = 0 then invalid_arg "Attr.make: empty name";
  name

let name a = a
let compare = String.compare
let equal = String.equal
let hash = Hashtbl.hash
let pp fmt a = Format.pp_print_string fmt a

module Set = struct
  include Stdlib.Set.Make (String)

  let of_names names = of_list (List.map make names)

  (* Single-letter attribute sets print as in the paper ("SDT"); longer
     names fall back to comma separation. *)
  let to_string s =
    let names = elements s in
    if names <> [] && List.for_all (fun n -> String.length n = 1) names then
      String.concat "" names
    else String.concat "," names

  let pp fmt s = Format.pp_print_string fmt (to_string s)
end

module Map = Stdlib.Map.Make (String)
