type func =
  | Count_star
  | Count of Attr.t
  | Sum of Attr.t
  | Avg of Attr.t
  | Min of Attr.t
  | Max of Attr.t

type t = { func : func; output : Attr.t }

let operand_of_func = function
  | Count_star -> None
  | Count a | Sum a | Avg a | Min a | Max a -> Some a

let make func =
  let output =
    match operand_of_func func with
    | Some a -> a
    | None -> Attr.make "count"
  in
  { func; output }

let make_named func name = { func; output = Attr.make name }
let operand t = operand_of_func t.func
let needs_plaintext _ = false

let func_name = function
  | Count_star -> "count(*)"
  | Count a -> Printf.sprintf "count(%s)" (Attr.name a)
  | Sum a -> Printf.sprintf "sum(%s)" (Attr.name a)
  | Avg a -> Printf.sprintf "avg(%s)" (Attr.name a)
  | Min a -> Printf.sprintf "min(%s)" (Attr.name a)
  | Max a -> Printf.sprintf "max(%s)" (Attr.name a)

let pp fmt t =
  if
    match operand_of_func t.func with
    | Some a -> Attr.equal a t.output
    | None -> Attr.equal t.output (Attr.make "count")
  then Format.pp_print_string fmt (func_name t.func)
  else Format.fprintf fmt "%s as %s" (func_name t.func) (Attr.name t.output)
