type cipher = { scheme : string; key_id : string; payload : string }

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Date of int
  | Enc of cipher

exception Incomparable of t * t

let equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Int x, Float y | Float y, Int x -> Float.equal (float_of_int x) y
  | Str x, Str y -> String.equal x y
  | Date x, Date y -> x = y
  | Enc x, Enc y ->
      String.equal x.scheme y.scheme
      && String.equal x.key_id y.key_id
      && String.equal x.payload y.payload
  | _ -> false

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Str _ -> 3
  | Date _ -> 4
  | Enc _ -> 5

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Null, _ -> -1
  | _, Null -> 1
  | Bool x, Bool y -> Stdlib.compare x y
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | Date x, Date y -> Stdlib.compare x y
  | Enc x, Enc y when String.equal x.scheme y.scheme ->
      String.compare x.payload y.payload
  | _ ->
      if rank a <> rank b then raise (Incomparable (a, b))
      else raise (Incomparable (a, b))

let is_null = function Null -> true | _ -> false
let is_encrypted = function Enc _ -> true | _ -> false

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Bool b -> Some (if b then 1.0 else 0.0)
  | Date d -> Some (float_of_int d)
  | Null | Str _ | Enc _ -> None

(* Days since epoch from an ISO yyyy-mm-dd date, using the standard civil
   calendar conversion (Howard Hinnant's days_from_civil algorithm). *)
let days_from_civil y m d =
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = (m + 9) mod 12 in
  let doy = (((153 * mp) + 2) / 5) + d - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let date_of_string s =
  match String.split_on_char '-' s with
  | [ y; m; d ] -> (
      match (int_of_string_opt y, int_of_string_opt m, int_of_string_opt d)
      with
      | Some y, Some m, Some d -> Date (days_from_civil y m d)
      | _ -> invalid_arg ("Value.date_of_string: " ^ s))
  | _ -> invalid_arg ("Value.date_of_string: " ^ s)

let hex_prefix s n =
  let n = min n (String.length s) in
  let buf = Buffer.create (2 * n) in
  for i = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "%02x" (Char.code s.[i]))
  done;
  Buffer.contents buf

let pp fmt = function
  | Null -> Format.pp_print_string fmt "NULL"
  | Bool b -> Format.pp_print_bool fmt b
  | Int i -> Format.pp_print_int fmt i
  | Float f -> Format.fprintf fmt "%g" f
  | Str s -> Format.fprintf fmt "%S" s
  | Date d -> Format.fprintf fmt "date(%d)" d
  | Enc c -> Format.fprintf fmt "<%s/%s:%s>" c.scheme c.key_id
               (hex_prefix c.payload 6)

let to_string v = Format.asprintf "%a" pp v
