(** Minimal JSON document construction and serialization.

    Just enough to export plans, profiles and planning reports to
    external tooling without adding a dependency; no parser. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialize; [pretty] (default true) indents with two spaces. Strings
    are escaped per RFC 8259 (including control characters); non-finite
    floats serialize as [null]. *)
