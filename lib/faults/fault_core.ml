module C = Mpq_crypto

exception Bad_spec of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_spec m)) fmt

let split_entries s =
  String.split_on_char ',' s
  |> List.concat_map (String.split_on_char ';')
  |> List.filter_map (fun entry ->
         let entry = String.trim entry in
         if entry = "" then None else Some entry)

let parse_prob what s =
  match float_of_string_opt s with
  | Some p when p >= 0.0 && p <= 1.0 -> p
  | _ -> bad "%s wants a probability in [0,1], got %S" what s

let parse_nonneg_int what s =
  match int_of_string_opt s with
  | Some k when k >= 0 -> k
  | _ -> bad "%s wants a non-negative integer, got %S" what s

let parse_keyed ~what parse_fault spec =
  split_entries spec
  |> List.map (fun entry ->
         match String.index_opt entry ':' with
         | None -> bad "entry %S is not %s" entry what
         | Some i ->
             let key = String.trim (String.sub entry 0 i) in
             let body =
               String.trim (String.sub entry (i + 1) (String.length entry - i - 1))
             in
             if key = "" then bad "entry %S names no subject" entry;
             (key, parse_fault ~entry body))

(* One fixed parent per seed; [Prng.derive] is pure in (state, index),
   so each entity's child stream is independent of every other's and of
   the draw interleaving — see prng.mli. *)
let session_rng ~seed index =
  C.Prng.derive (C.Prng.create (Int64.of_int seed)) index

let draw rng p =
  let u = C.Prng.float rng 1.0 in
  p > 0.0 && u < p
