(** Shared scaffolding for deterministic fault plans.

    Two fault-injection layers live in the tree: the distributed
    simulator's per-subject plans ({!Distsim.Faults}: crash, transient
    loss, corruption, slow links) and the serving layer's per-session
    connection plans ({!Serve.Netfaults}: slow, stall, disconnect,
    garbage bytes). Both share the same contract — a spec parsed from a
    compact command-line string, instantiated with a seeded
    {!Mpq_crypto.Prng} so the same seed and spec reproduce the exact
    same injected schedule — and both share this module: the spec
    grammar helpers (entry splitting, probability and integer-argument
    parsing, the [Bad_spec] diagnostic discipline) and the seeded
    drawing helpers. *)

exception Bad_spec of string
(** Raised by every spec parser on malformed input, with a message
    naming the offending entry. *)

val bad : ('a, unit, string, 'b) format4 -> 'a
(** [bad fmt ...] raises {!Bad_spec} with a formatted message. *)

val split_entries : string -> string list
(** Split a spec string on [,] and [;], trim each entry, and drop the
    empty ones — the shared outer grammar of every fault spec. *)

val parse_prob : string -> string -> float
(** [parse_prob what s] parses [s] as a probability in [\[0,1\]];
    [what] names the construct in the {!Bad_spec} message. *)

val parse_nonneg_int : string -> string -> int
(** [parse_nonneg_int what s] parses [s] as an int [>= 0]. *)

val parse_keyed :
  what:string -> (entry:string -> string -> 'a) -> string -> (string * 'a) list
(** [parse_keyed ~what parse_fault spec] parses the [KEY:FAULT] entry
    form ({!Distsim.Faults}'s [SUBJECT:FAULT]): splits entries, splits
    each at the first [:], rejects empty keys, and hands the fault body
    (plus the whole entry, for diagnostics) to [parse_fault]. *)

val session_rng : seed:int -> int -> Mpq_crypto.Prng.t
(** [session_rng ~seed index] is the derived generator for entity
    [index] (a session, a subject slot, …) under [seed]. Pure in both
    arguments: the same pair always yields the same stream, regardless
    of how many other entities drew theirs — the determinism contract
    every fault plan in the tree advertises. *)

val draw : Mpq_crypto.Prng.t -> float -> bool
(** [draw rng p] flips a coin of probability [p] (always [false] for
    [p <= 0], always [true] for [p >= 1], consuming randomness either
    way so schedules stay aligned across spec variations). *)
