(** Deterministic connection-level fault plans for the socket server.

    The PR-3 fault framework ({!Distsim.Faults}) degrades the
    {e distributed execution} of one query; this module extends the
    same idea to the {e serving} layer, where the adversary is a
    misbehaving connection: a client (or path) that is slow, stalls
    mid-stream, disconnects mid-batch, or injects garbage bytes. The
    server's chaos mode ([mpqcli serve --listen … --netfaults SPEC])
    applies one plan per accepted session, and the seed sweep in
    [test/test_server.ml] asserts the overload contract under them:
    every accepted request is answered byte-identically to a direct
    {!Service.submit_batch} call, every refused request gets a
    structured refusal, and no session's faults leak into another
    session's responses.

    Same determinism contract as {!Distsim.Faults}, built on the same
    {!Mpq_faults.Fault_core}: a session's plan is a pure function of
    [(seed, session index)] via {!Mpq_crypto.Prng.derive}, so the same
    seed and spec reproduce the same injected schedule — which
    sessions are faulty, which request draws a delay or garbage, where
    the stall and disconnect cuts fall — regardless of how sessions
    interleave on the wire. *)

type fault =
  | Slow of { delay_ms : int; prob : float }
      (** Delay a request's admission by [delay_ms] with probability
          [prob] per request — a slow client or path. The server holds
          the request back without blocking the accept loop, so the
          delay burns the request's deadline budget, not the server's. *)
  | Stall_after of int
      (** After [k] requests the session's inbound side goes silent:
          the server stops reading it, flushes what it owes, and
          closes — the client sees EOF, never a hang. *)
  | Disconnect_after of int
      (** Force-close the session after [k] responses, at a response
          boundary (a structured cut: no half-written CSV). *)
  | Garbage of float
      (** With this probability per request line, garbage bytes are
          injected into the line before parsing — the request must
          come back as a structured parse refusal, never corrupt a
          neighbouring session. *)

type spec = {
  session_prob : float;
      (** fraction of sessions the plan applies to (drawn per session
          from its derived generator; default 1.0 = every session) *)
  faults : fault list;
}

exception Bad_spec of string

val parse : string -> spec
(** Entries separated by [,] or [;]: [slow=MS\[@P\]], [stall@K],
    [disconnect@K], [garbage=P], and [sessions=P] to set
    [session_prob]. Example:
    ["sessions=0.5,slow=40@0.3,garbage=0.1,disconnect@8"]. Raises
    {!Bad_spec} on malformed input. *)

val render : spec -> string
(** Inverse of {!parse} (canonical form). *)

val none : spec
(** The empty plan: no faults, nothing drawn. *)

type session
(** One session's instantiated schedule. *)

val session : seed:int -> spec -> int -> session
(** [session ~seed spec index] derives session [index]'s plan. Pure in
    all three arguments. *)

val active : session -> bool
(** Whether this session drew the faulty side of [sessions=P]. An
    inactive session consumes no further randomness and injects
    nothing. *)

type request_verdict = { delay_ms : int; garbage : bool }

val on_request : session -> request_verdict
(** Roll the fate of the session's next request line: every
    probabilistic fault is drawn in spec order whether or not an
    earlier one fired (the {!Distsim.Faults.interact} discipline), so
    the schedule depends only on (seed, session index, request
    ordinal). Inactive sessions draw nothing. *)

val stall_after : session -> int option
(** The stall cut: stop reading after this many requests. *)

val disconnect_after : session -> int option
(** The disconnect cut: force-close after this many responses. *)

val garble : session -> string -> string
(** Deterministically corrupt a request line (the injected garbage
    bytes come from the session's generator). *)
