(** Bounded LRU map split into N lock-guarded shards.

    The shape the multi-tenant server needs is concurrency on the read
    path and determinism on the write path, and those pull in opposite
    directions for a classic sharded cache (N independent LRUs make the
    eviction victim a function of the shard count). This implementation
    splits only what concurrency needs and keeps global what
    determinism needs:

    - {b Sharded:} the key → entry hashtable, one per shard, each
      guarded by its own mutex. A key lives in the shard selected by
      hashing its {e shard key} [skey] — the caller passes the
      structural fingerprint (query fingerprint for the plan cache,
      sub-tree fingerprint for the sub-plan cache), so rekeying an
      entry under a new environment fingerprint never migrates it
      across shards. Worker domains probe different shards without
      contending, and a worker probing shard [i] never waits on the
      coordinator mutating shard [j].
    - {b Global:} the recency list and the capacity. Both are owned by
      the coordinating (loop) thread, which is the only caller of the
      mutating operations — per-shard mutexes grant workers safe
      concurrent {!peek}s, they do not grant anyone else mutation
      rights. Because eviction walks one global tail under one global
      capacity, the cache's evolution is a pure function of the
      operation sequence: the surviving key set is identical at 1, 4
      or 16 shards (the shard-determinism differential test), exactly
      as {!Lru}'s evolution is identical at any [--jobs].

    Every operation takes the entry's shard key explicitly ([~skey])
    rather than re-deriving it, because the full cache key is an
    opaque length-prefixed composite the cache cannot parse. *)

type 'a t

val create : capacity:int -> shards:int -> 'a t
(** Raises [Invalid_argument] when [capacity < 1] or [shards < 1]. *)

val capacity : _ t -> int
val shards : _ t -> int
val length : _ t -> int

val shard_of : _ t -> skey:string -> int
(** The shard index [skey] hashes to (FNV-1a, stable across runs and
    platforms) — exposed for diagnostics and shard-occupancy stats. *)

val find : 'a t -> skey:string -> string -> 'a option
(** Refreshes the entry's recency and counts a hit or a miss.
    Coordinator-only: touches the global recency list. *)

val mem : _ t -> skey:string -> string -> bool
(** Pure probe: no recency refresh, no stats. *)

val peek : 'a t -> skey:string -> string -> 'a option
(** Lock-guarded pure lookup: takes the entry's shard mutex around the
    table read, touches no recency state and no statistics (a per-shard
    probe counter aside). This is the one operation worker domains may
    call, concurrently with each other and with coordinator mutations
    of {e other} shards. *)

val add : 'a t -> skey:string -> string -> 'a -> unit
(** Insert or replace, making the entry most recent; evicts the
    globally least recently used entry (whatever shard it lives in)
    when the cache is over capacity. Coordinator-only. *)

val remap : 'a t -> (string -> 'a -> (string * 'a) option) -> int
(** [remap t f] rewrites every binding in place, most recently used
    first, keeping each entry's recency position and shard ([f] may
    change the full key but not the shard key — the serve layer rekeys
    by environment fingerprint, which leaves the structural component
    alone). [None] drops the entry; on a new-key collision the later
    binding visited wins (see {!Lru.remap}). Returns the number of
    entries dropped. Coordinator-only. *)

val keys : _ t -> string list
(** All keys, most recently used first — the global recency order, by
    construction independent of the shard count. *)

val clear : 'a t -> unit
(** Drop every entry (statistics are kept). *)

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
}

val stats : _ t -> stats

val probes : _ t -> int array
(** Per-shard {!peek} counts, index = shard — the worker-side traffic
    distribution (the load-bench reports it as shard occupancy). *)
