module C = Mpq_crypto
module Core = Mpq_faults.Fault_core

type fault =
  | Slow of { delay_ms : int; prob : float }
  | Stall_after of int
  | Disconnect_after of int
  | Garbage of float

type spec = { session_prob : float; faults : fault list }

exception Bad_spec = Core.Bad_spec

let bad = Core.bad

let parse_entry entry =
  let arg_after c =
    match String.index_opt entry c with
    | Some i -> Some (String.sub entry (i + 1) (String.length entry - i - 1))
    | None -> None
  in
  let kind =
    match (String.index_opt entry '=', String.index_opt entry '@') with
    | Some i, Some j -> String.sub entry 0 (min i j)
    | Some i, None | None, Some i -> String.sub entry 0 i
    | None, None -> entry
  in
  match kind with
  | "slow" -> (
      match arg_after '=' with
      | None -> bad "slow wants slow=MS or slow=MS@P, got %S" entry
      | Some arg ->
          let ms, prob =
            match String.index_opt arg '@' with
            | None -> (arg, "1.0")
            | Some j ->
                ( String.sub arg 0 j,
                  String.sub arg (j + 1) (String.length arg - j - 1) )
          in
          `Fault
            (Slow
               { delay_ms = Core.parse_nonneg_int "slow=MS" ms;
                 prob = Core.parse_prob "slow" prob }))
  | "stall" -> (
      match arg_after '@' with
      | Some k -> `Fault (Stall_after (Core.parse_nonneg_int "stall@K" k))
      | None -> bad "stall wants stall@K, got %S" entry)
  | "disconnect" -> (
      match arg_after '@' with
      | Some k ->
          `Fault (Disconnect_after (Core.parse_nonneg_int "disconnect@K" k))
      | None -> bad "disconnect wants disconnect@K, got %S" entry)
  | "garbage" -> (
      match arg_after '=' with
      | Some p -> `Fault (Garbage (Core.parse_prob "garbage" p))
      | None -> bad "garbage wants garbage=P, got %S" entry)
  | "sessions" -> (
      match arg_after '=' with
      | Some p -> `Sessions (Core.parse_prob "sessions" p)
      | None -> bad "sessions wants sessions=P, got %S" entry)
  | k ->
      bad
        "unknown netfault %S in %S (want slow=MS[@P], stall@K, disconnect@K, \
         garbage=P or sessions=P)"
        k entry

let parse s =
  List.fold_left
    (fun spec entry ->
      match parse_entry entry with
      | `Fault f -> { spec with faults = spec.faults @ [ f ] }
      | `Sessions p -> { spec with session_prob = p })
    { session_prob = 1.0; faults = [] }
    (Core.split_entries s)

let render_fault = function
  | Slow { delay_ms; prob } ->
      if prob >= 1.0 then Printf.sprintf "slow=%d" delay_ms
      else Printf.sprintf "slow=%d@%g" delay_ms prob
  | Stall_after k -> Printf.sprintf "stall@%d" k
  | Disconnect_after k -> Printf.sprintf "disconnect@%d" k
  | Garbage p -> Printf.sprintf "garbage=%g" p

let render spec =
  String.concat ","
    ((if spec.session_prob >= 1.0 then []
      else [ Printf.sprintf "sessions=%g" spec.session_prob ])
    @ List.map render_fault spec.faults)

let none = { session_prob = 1.0; faults = [] }

type session = { spec : spec; rng : C.Prng.t; active : bool }

let session ~seed spec index =
  let rng = Core.session_rng ~seed index in
  (* the activation draw comes first so an inactive session's plan
     consumes exactly one draw — the schedule of session [i] never
     depends on any other session's *)
  let active = Core.draw rng spec.session_prob in
  { spec; rng; active }

let active s = s.active

type request_verdict = { delay_ms : int; garbage : bool }

let on_request s =
  if not s.active then { delay_ms = 0; garbage = false }
  else
    List.fold_left
      (fun v f ->
        match f with
        | Slow { delay_ms; prob } ->
            if Core.draw s.rng prob then
              { v with delay_ms = v.delay_ms + delay_ms }
            else v
        | Garbage p -> if Core.draw s.rng p then { v with garbage = true } else v
        | Stall_after _ | Disconnect_after _ -> v)
      { delay_ms = 0; garbage = false }
      s.spec.faults

let first_cut pick s =
  if not s.active then None
  else
    List.fold_left
      (fun acc f ->
        match (pick f, acc) with
        | Some k, Some k' -> Some (min k k')
        | Some k, None -> Some k
        | None, acc -> acc)
      None s.spec.faults

let stall_after s =
  first_cut (function Stall_after k -> Some k | _ -> None) s

let disconnect_after s =
  first_cut (function Disconnect_after k -> Some k | _ -> None) s

let garble s line =
  (* splice seeded garbage into the middle of the line: malformed bytes
     the SQL lexer must refuse, deterministic per (session, ordinal) *)
  let junk = C.Prng.bytes s.rng 6 in
  let junk =
    String.map
      (fun c -> Char.chr (0x21 + (Char.code c mod 0x5e)))
      junk
  in
  let cut = String.length line / 2 in
  String.sub line 0 cut ^ "\x01" ^ junk ^ "\x01" ^ String.sub line cut (String.length line - cut)
