(** Long-running query service with a verified plan cache.

    The paper's pipeline (profiles → candidates → minimal extension →
    keys → dispatch) is deterministic in its inputs, so a stream of
    queries under a slowly-changing policy re-derives the same plans
    over and over. The service amortizes that work: optimized plans
    are cached {e after} they have passed the independent static
    verifier once, keyed by

    [cache key = query fingerprint × environment fingerprint]

    where the environment covers the policy, the participating
    subjects, the operation-requirement config, prices, bandwidths,
    the recipient and the latency bound
    ({!Planner.Optimizer.environment_fingerprint}). A cache hit skips
    parsing-independent planning {e and} re-verification; any
    [set_*] mutation rotates the environment fingerprint, so every
    key formed under the old environment becomes unreachable — stale
    plans are never served, and the bounded LRU ages them out.

    {2 Incremental policy invalidation}

    Under the default [Incremental] mode, {!set_policy} does better
    than wholesale rotation: it diffs the old and new policies as
    {e fact sets} ({!Analysis.Delta}) and consults each cached entry's
    authorization dependency set ({!Analysis.Deps}) — the exact facts
    the verifier's certification of that plan consumed. Entries whose
    dependency set is disjoint from the delta provably keep their
    verdict and are rekeyed under the new environment fingerprint
    (recency intact); entries overlapping only on {e added} facts are
    kept after one incremental verifier pass (grants are monotone for
    Def. 4.1, so re-verification — not replanning — suffices);
    entries that lost a fact they depended on are dropped. Planner
    denials survive revoke-only deltas and drop on any grant;
    verifier denials drop on any view change. Schema changes and
    subject-population swaps fall back to full rotation.

    {2 Concurrency and determinism}

    [submit_batch] serves a batch on the {!Par} pool with a
    three-phase protocol: (1) probe — compute keys and classify
    misses without touching the cache; (2) plan — optimize + verify
    each {e distinct} missing key in parallel; (3) replay — perform
    the real cache lookups and insertions sequentially, in request
    order, on the coordinating domain, then execute result plans in
    parallel. Because phase 3 is the only phase that mutates the
    cache, the cache's evolution (hit/miss sequence, insertion order,
    evictions) is identical at any job count, and results are
    byte-identical to serial execution (ciphertext bytes included —
    the {!Engine.Exec} position-derived randomness guarantee).

    {2 Multi-query optimization: plan DAGs and sub-plan sharing}

    With [~sharing:true] (the default) the service hash-conses every
    cached executable plan into a shared-node DAG ({!Planner.Dag}):
    structurally identical authorized subplans across the cached
    queries become one physical node. Three kinds of work are then
    shared, all without changing a single response byte:

    - {b batch grouping}: requests in one round that resolve to the
      same cache key execute once; the other responses alias the
      immutable result table;
    - {b sub-plan result memoization}: each execution consults a
      second, first-class LRU tier keyed by (subtree structure ×
      preorder position when ciphertext is produced inside × key
      clusters/schemes × executor assignment × environment
      fingerprint). Equal key implies equal bytes by construction, so
      a shared subtree — and the whole plan, via its root — executes
      once and is replayed from the cache afterwards. Sub-plan hits
      survive full-query misses: a new query shape still reuses the
      shared scans/joins it has in common with resident plans.
      Crypto-free subtrees share across positions; anything producing
      ciphertext is position-bound (randomness derives from preorder
      positions). Structurally equal subtrees under {e different
      environments} (policy epoch, subject population, recipient,
      config) never share — the environment fingerprint in the key is
      the leakage gate for the paper's series-of-queries rule;
    - {b derivation sharing}: the dependency-analysis profile
      re-derivations share a fingerprint-keyed memo
      ({!Verify.Derive.memo}), so a shared subtree is derived once per
      service, not once per consuming query.

    During the parallel exec phase the sub-plan cache is a frozen
    snapshot (pure {!Lru.peek} lookups); hits and stores are buffered
    and replayed by the coordinator in request order, position order
    within a plan — so the subcache evolves identically at any job
    count. Incremental policy migration treats sub-plan entries like
    plan entries: an entry whose per-subtree dependency facts
    ({!Analysis.Deps.of_subplan}) consumed a revoked grant is dropped
    (once, for every consumer); any other delta rekeys it under the
    new environment fingerprint. *)

open Relalg

type t

(** How {!set_policy} treats resident cache entries: [Rotate] makes
    them all unreachable (the pre-analysis behaviour); [Incremental]
    (default) migrates entries the policy delta provably cannot
    affect. Both modes serve byte-identical responses — [Incremental]
    just replans less. *)
type invalidation = Rotate | Incremental

val create :
  ?cache_capacity:int ->
  ?max_batch:int ->
  ?pool:Par.pool ->
  ?config:Authz.Opreq.config ->
  ?pricing:Planner.Pricing.t ->
  ?network:Planner.Network.t ->
  ?base:Planner.Estimate.base_stats ->
  ?deliver_to:Authz.Subject.t ->
  ?max_latency:float ->
  ?udfs:(string * Engine.Exec.udf) list ->
  ?seed:int64 ->
  ?invalidation:invalidation ->
  ?sharing:bool ->
  ?subcache_capacity:int ->
  ?shards:int ->
  ?now:(unit -> float) ->
  policy:Authz.Authorization.t ->
  subjects:Authz.Subject.t list ->
  tables:(string * Engine.Table.t) list ->
  unit ->
  t
(** [cache_capacity] bounds the plan cache (default 128 entries,
    LRU). [max_batch] is the admission bound: {!submit_batch} serves
    at most this many queries per round, queueing the rest (default
    32 — backpressure, so one huge batch cannot monopolize the pool).
    [deliver_to] defaults to the first [User] among [subjects], when
    any. [seed] fixes the keyring so ciphertext bytes are reproducible
    across runs (default [42L]). [base] supplies cardinality
    statistics to the optimizer (default: none). [now] is the clock
    request deadlines are checked against (default
    [Unix.gettimeofday]; injectable so tests can force the
    between-plan-and-exec expiry deterministically). [sharing]
    (default [true]) enables the multi-query optimizations above;
    [false] is the isolated baseline the differential tests compare
    against — responses are byte-identical either way.
    [subcache_capacity] bounds the sub-plan result tier (default 256
    entries, LRU). [shards] (default 1) splits both caches' hashtables
    into that many mutex-guarded shards (see {!Shard_lru}) so worker
    domains can probe concurrently; capacity, recency and eviction
    stay global, so responses and final cache-key sets are identical
    at any shard count. The service starts with one registered tenant,
    {!Tenancy.default_id}, built from [policy]/[subjects] and the
    optional environment arguments; more are added with
    {!add_tenant}. *)

(** {2 Tenants}

    Every request is served under a named tenant (default
    {!Tenancy.default_id}): its policy, subjects, config, prices,
    network, recipient and latency bound. The tenant id is a field of
    the environment fingerprint, so tenants occupy disjoint key spaces
    in the plan and sub-plan caches — isolation is a property of key
    construction, not of locks, and [cross_tenant_hits] in {!stats}
    counts the (structurally impossible) violations the fail-closed
    runtime checks would refuse. *)

val add_tenant :
  t ->
  id:string ->
  ?policy:Authz.Authorization.t ->
  ?subjects:Authz.Subject.t list ->
  ?config:Authz.Opreq.config ->
  ?pricing:Planner.Pricing.t ->
  ?network:Planner.Network.t ->
  ?deliver_to:Authz.Subject.t ->
  ?max_latency:float ->
  unit ->
  unit
(** Register a new tenant. Unsupplied components are copied from the
    default tenant's current values. Raises [Invalid_argument] when
    [id] is already registered. *)

val tenant_ids : t -> string list
(** Registered tenant ids, sorted. *)

val tenant_stats : t -> (string * Tenancy.stats) list
(** Per-tenant serving counters, in sorted id order. *)

(** {2 Environment mutation — explicit invalidation} *)

val set_policy :
  ?subjects:Authz.Subject.t list ->
  ?tenant:string ->
  t ->
  Authz.Authorization.t ->
  unit
(** Swap the named tenant's policy (default tenant when unnamed, and
    optionally its subject population). Always rotates that tenant's
    environment fingerprint; in [Incremental] mode (and when
    [subjects] is not supplied) the tenant's surviving entries are
    then migrated to the new fingerprint per the dependency protocol
    above, so its unaffected plans keep hitting. Entries of {e other}
    tenants are untouched in every respect: their fingerprints did not
    rotate, their keys stay resident, their recency is preserved
    (asserted by the per-tenant invalidation test). Raises
    [Invalid_argument] on an unknown tenant. *)

val set_config : ?tenant:string -> t -> Authz.Opreq.config -> unit
val set_pricing : ?tenant:string -> t -> Planner.Pricing.t -> unit
val set_network : ?tenant:string -> t -> Planner.Network.t -> unit

val invalidate : t -> unit
(** Drop every cache entry (statistics survive). The [set_*] calls
    above make this unnecessary for correctness; it exists for
    explicit memory release. *)

val environment : ?tenant:string -> t -> string
(** The named tenant's current environment fingerprint (tests assert
    rotation and cross-tenant distinctness). *)

(** {2 Serving} *)

type status = Hit | Miss

type outcome =
  | Table of Engine.Table.t  (** executed result *)
  | Rejected of string
      (** the authorization model rejects the query under the current
          policy (no authorized executor, the recipient lacks a
          required input authorization, or no produced plan passes the
          static verifier — the service fails closed) — a policy
          verdict, not an error, and itself cacheable *)
  | Expired of string
      (** the request's deadline passed before the service would have
          done the work: either at admission (before the cache is even
          probed — a refused request leaves no trace in the cache) or
          at the checkpoint between the plan and exec phases (the
          planned entry is kept for future hits, but the overdue
          execution is refused). Never cached: the same query
          resubmitted with a live deadline is served normally. *)

type response = {
  outcome : outcome;
  status : status;
  key : string;  (** the cache key the request resolved to ([""] when
                     refused at admission) *)
  tenant : string;
      (** the tenant the request was served under (echoed verbatim for
          an unknown-tenant rejection) *)
  planned : Planner.Optimizer.result option;
      (** [None] on rejection or admission expiry *)
  plan_ms : float;
      (** fingerprint + cache lookup + (on miss) planning and
          verification — the latency the cache exists to cut *)
  exec_ms : float;
}

type request = { query : Plan.t; deadline : float option; tenant : string }
(** A query plus an optional absolute deadline (seconds, on the
    service's [now] clock — [Unix.gettimeofday] by default) and the
    tenant to serve it under. A request naming an unregistered tenant
    is refused ([Rejected]) before the cache is probed. *)

val request : ?deadline:float -> ?tenant:string -> Plan.t -> request

val parse : ?tenant:string -> t -> string -> Plan.t
(** SQL → plan against the named tenant's policy schemas, classically
    optimized (normalization + join reordering) like the CLI front
    end. Raises the [Mpq_sql] parse exceptions on malformed input and
    [Invalid_argument] on an unknown tenant. *)

val submit : ?tenant:string -> t -> Plan.t -> response
(** Serve one query (a batch of one). *)

val submit_sql : ?tenant:string -> t -> string -> response

val submit_batch : t -> Plan.t list -> response list
(** Serve a batch concurrently (see the protocol above). Responses
    are in request order, and both the responses and the final cache
    state are identical to submitting the queries one by one. Batches
    larger than [max_batch] are served in admission-bounded rounds. *)

val submit_request : t -> request -> response

val submit_batch_requests : t -> request list -> response list
(** {!submit_batch} with per-request deadlines. A deadline is checked
    twice: at admission, before the round's cache probe (an expired
    request is refused without touching the cache, fingerprinting, or
    planning), and again between the plan and exec phases (so a
    request that spent its budget being planned is not also executed).
    Requests without deadlines behave exactly as {!submit_batch} —
    in particular the deterministic-replay guarantees are unchanged. *)

(** {2 Introspection} *)

type stats = {
  queries : int;
  rejections : int;
  expired : int;  (** requests refused for a blown deadline *)
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  invalidated : int;
      (** entries dropped by incremental policy migration *)
  reverified : int;
      (** entries re-certified by an incremental verifier pass *)
  retained : int;  (** entries that survived a policy migration *)
  entries : int;
  capacity : int;
  subplan_hits : int;
      (** subtree executions answered from the sub-plan result cache *)
  subplan_stores : int;  (** distinct sub-plan results inserted *)
  subplan_invalidated : int;
      (** sub-plan entries dropped by incremental policy migration *)
  subplan_entries : int;  (** resident sub-plan results *)
  shared_execs : int;
      (** responses aliased onto a same-key execution in their round *)
  tenants : int;  (** registered tenants *)
  shards : int;  (** cache shard count *)
  cross_tenant_hits : int;
      (** cache hits refused because the entry belonged to another
          tenant — structurally impossible while keys embed the tenant
          id, so anything but 0 means key construction is broken (the
          bench and CI assert 0) *)
  plan_ms : float;  (** cumulative, across all queries *)
  exec_ms : float;
}

val stats : t -> stats
val hit_rate : stats -> float

val subplan_hit_rate : stats -> float
(** [subplan_hits / (subplan_hits + subplan_stores)] — the fraction of
    memoizable subtree executions answered from cache. *)

val cache_keys : t -> string list
(** Most recently used first ({!Lru.keys}) — the deterministic final
    state the differential tests compare. *)

val subcache_keys : t -> string list
(** Sub-plan result cache keys, most recently used first — compared
    across job counts by the sharing differential tests. *)

val dag_stats : t -> Planner.Dag.stats
(** Node/occurrence/sharing counts of the hash-consed plan store. *)

val derivations_shared : t -> int
(** Profile derivations answered from the service's fingerprint-keyed
    derivation memo. *)

val shard_probes : t -> int array
(** Per-shard worker-probe counts of the sub-plan cache
    ({!Shard_lru.probes}) — the exec-phase traffic distribution over
    shards. *)

val render_stats : stats -> string
(** One line: queries, hits/misses/rate, evictions, latencies. *)

val stats_json : stats -> Json.t
