type 'a entry = { mutable value : 'a; mutable stamp : int }

type 'a t = {
  cap : int;
  table : (string, 'a entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
}

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
}

let create ~capacity =
  if capacity < 1 then
    invalid_arg (Printf.sprintf "Lru.create: capacity %d < 1" capacity);
  { cap = capacity; table = Hashtbl.create (2 * capacity); clock = 0;
    hits = 0; misses = 0; insertions = 0; evictions = 0 }

let capacity t = t.cap
let length t = Hashtbl.length t.table

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some e ->
      t.hits <- t.hits + 1;
      e.stamp <- tick t;
      Some e.value
  | None ->
      t.misses <- t.misses + 1;
      None

let mem t key = Hashtbl.mem t.table key

let evict_oldest t =
  let victim = ref None in
  Hashtbl.iter
    (fun key e ->
      match !victim with
      | Some (_, stamp) when stamp <= e.stamp -> ()
      | _ -> victim := Some (key, e.stamp))
    t.table;
  match !victim with
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1
  | None -> ()

let add t key value =
  (match Hashtbl.find_opt t.table key with
  | Some e ->
      e.value <- value;
      e.stamp <- tick t
  | None ->
      t.insertions <- t.insertions + 1;
      Hashtbl.replace t.table key { value; stamp = tick t };
      if Hashtbl.length t.table > t.cap then evict_oldest t);
  ()

let remap t f =
  let bindings = Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.table [] in
  let dropped = ref 0 in
  List.iter
    (fun (k, e) ->
      match f k e.value with
      | None ->
          Hashtbl.remove t.table k;
          incr dropped
      | Some (k', v') ->
          if String.equal k' k then e.value <- v'
          else begin
            Hashtbl.remove t.table k;
            (* keep the entry's stamp: migration must not disturb the
               recency order the differential tests observe *)
            Hashtbl.replace t.table k' { value = v'; stamp = e.stamp }
          end)
    bindings;
  !dropped

let keys t =
  let all = Hashtbl.fold (fun key e acc -> (e.stamp, key) :: acc) t.table [] in
  List.map snd (List.sort (fun (a, _) (b, _) -> compare b a) all)

let clear t = Hashtbl.reset t.table

let stats (t : _ t) =
  { hits = t.hits; misses = t.misses; insertions = t.insertions;
    evictions = t.evictions }
