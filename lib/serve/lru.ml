(* Recency is an intrusive doubly-linked list over the hash-table
   entries: head = most recently used, tail = eviction victim. Every
   operation the serving path performs — find (touch), add (insert or
   refresh), eviction at capacity — is O(1); the earlier stamp-scan
   implementation degraded every insert to O(n) exactly when the cache
   sat at capacity under overload. [remap] rewrites entries in place
   without moving their list node, which preserves recency order the
   way the old implementation preserved stamps. *)

type 'a node = {
  mutable key : string;
  mutable value : 'a;
  mutable prev : 'a node option;  (* toward the head (more recent) *)
  mutable next : 'a node option;  (* toward the tail (less recent) *)
}

type 'a t = {
  cap : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
}

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
}

let create ~capacity =
  if capacity < 1 then
    invalid_arg (Printf.sprintf "Lru.create: capacity %d < 1" capacity);
  { cap = capacity; table = Hashtbl.create (2 * capacity); head = None;
    tail = None; hits = 0; misses = 0; insertions = 0; evictions = 0 }

let capacity t = t.cap
let length t = Hashtbl.length t.table

let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.head <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.prev <- None;
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n =
  match n.prev with
  | None -> ()  (* already the head *)
  | Some _ ->
      unlink t n;
      push_front t n

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some n ->
      t.hits <- t.hits + 1;
      touch t n;
      Some n.value
  | None ->
      t.misses <- t.misses + 1;
      None

let mem t key = Hashtbl.mem t.table key

(* Pure read: no recency refresh, no statistics, no mutation at all —
   safe for concurrent readers on worker domains provided nothing
   writes in parallel (the serving layer's exec phase freezes the
   sub-plan cache and replays its mutations afterwards). *)
let peek t key =
  match Hashtbl.find_opt t.table key with
  | Some n -> Some n.value
  | None -> None

let evict_oldest t =
  match t.tail with
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table n.key;
      t.evictions <- t.evictions + 1
  | None -> ()

let add t key value =
  match Hashtbl.find_opt t.table key with
  | Some n ->
      n.value <- value;
      touch t n
  | None ->
      t.insertions <- t.insertions + 1;
      let n = { key; value; prev = None; next = None } in
      Hashtbl.replace t.table key n;
      push_front t n;
      if Hashtbl.length t.table > t.cap then evict_oldest t

let remap t f =
  (* walk the recency list (stable under in-place rewrites and
     unlinking the node just visited), so the migration order is the
     deterministic MRU-first order rather than hash order *)
  let dropped = ref 0 in
  let rec walk = function
    | None -> ()
    | Some n ->
        let next = ref n.next in
        (match f n.key n.value with
        | None ->
            Hashtbl.remove t.table n.key;
            unlink t n;
            incr dropped
        | Some (k', v') ->
            n.value <- v';
            if not (String.equal k' n.key) then begin
              Hashtbl.remove t.table n.key;
              (* when two bindings collide on the new key, the later
                 one visited wins, as documented: drop the node already
                 holding [k'] (skipping over it if it was next in the
                 walk) *)
              (match Hashtbl.find_opt t.table k' with
              | Some clash when clash != n ->
                  (match !next with
                  | Some m when m == clash -> next := clash.next
                  | _ -> ());
                  unlink t clash;
                  incr dropped
              | _ -> ());
              n.key <- k';
              Hashtbl.replace t.table k' n
            end);
        walk !next
  in
  walk t.head;
  !dropped

let keys t =
  let rec collect acc = function
    | None -> List.rev acc
    | Some n -> collect (n.key :: acc) n.next
  in
  collect [] t.head

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let stats (t : _ t) =
  { hits = t.hits; misses = t.misses; insertions = t.insertions;
    evictions = t.evictions }
