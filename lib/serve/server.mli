(** Overload-safe socket front-end for the query {!Service}.

    One process, one {!Service}, many concurrent client sessions over
    the same line protocol [mpqcli serve] speaks on stdin: one request
    per line, one framed response per request — a
    [-- \[N\] hit|miss: …] status line followed by the CSV table, or a
    single structured refusal line. The accept path is a
    single-threaded [select] loop; planning and execution stay on the
    service's {!Par} pool. Because every cache access happens on the
    loop thread, session isolation holds by construction: a malformed,
    slow or faulted connection can corrupt neither another session's
    response stream nor the shared plan cache.

    Sessions are tenant-scoped: each starts under
    {!Tenancy.default_id} and may switch with [\tenant use <id>]
    (plus [\tenant] / [\tenant list] to inspect); every subsequent
    request is parsed and served under that tenant's policy
    environment. Tenants are registered at startup
    ({!Service.add_tenant}) — no wire input can create or mutate one —
    and tenant isolation itself is the service's key-space guarantee,
    not a server concern.

    The overload behaviour is engineered in, not bolted on:

    - {b admission control} — a bounded global backlog; a request
      arriving when it is full is refused {e immediately} with
      [-- \[N\] shed: backlog full …]. Requests are never silently
      dropped and a response is never a partial table.
    - {b deadlines} — each request's budget starts when its line is
      read; the service checks it at admission and again between the
      plan and exec phases, answering
      [-- \[N\] deadline exceeded: …].
    - {b backpressure} — a session that stops reading its responses
      accumulates output up to a high-water mark, after which the
      server stops {e reading} it (never drops what it owes).
    - {b graceful shutdown} — {!stop} (wired to SIGTERM/SIGINT by the
      CLI) closes the listener, drains every admitted and delayed
      request through the service, flushes each session's output
      within a grace budget, and {!run} returns with final stats.

    A {!Netfaults} plan turns the server into its own chaos harness:
    per-session seeded slow/stall/disconnect/garbage schedules are
    injected at the connection layer while the contract above is
    asserted by [test/test_server.ml]. *)

type addr = Tcp of int | Unix_path of string
    (** [Tcp port] listens on the IPv4 loopback; [Tcp 0] picks a free
        port (see {!bound_addr}). [Unix_path p] listens on a
        filesystem socket (any stale file at [p] is replaced). *)

val addr_of_string : string -> addr
(** ["7401"] → [Tcp 7401]; anything containing ['/'] → [Unix_path].
    Raises [Invalid_argument] otherwise. *)

val addr_to_string : addr -> string

type config = {
  backlog : int;  (** global admitted-request bound (default 64) *)
  dispatch : int;
      (** requests dispatched to the service per loop iteration — keeps
          the accept path responsive under a deep backlog (default 16) *)
  deadline_ms : int option;
      (** per-request budget from line arrival (default none) *)
  max_sessions : int;  (** concurrent session bound (default 64) *)
  outq_highwater : int;
      (** per-session pending output (bytes) past which the server
          stops reading that session (default 1 MiB) *)
  netfaults : Netfaults.spec;  (** chaos plan (default {!Netfaults.none}) *)
  fault_seed : int;  (** seed for per-session fault derivation *)
  drain_grace_s : float;
      (** shutdown bound on flushing already-computed responses
          (default 5 s) *)
}

val default_config : config

type summary = {
  sum_sid : int;  (** session id, in accept order *)
  sum_tenant : string;  (** the tenant the session last switched to *)
  sum_requests : int;  (** request lines read from it *)
  sum_responses : int;  (** responses enqueued to it *)
}
(** One closed session's final counters. *)

type stats = {
  sessions : int;  (** sessions accepted *)
  sessions_refused : int;  (** refused at the [max_sessions] bound *)
  requests : int;  (** request lines read (after chaos injection) *)
  accepted : int;  (** admitted to the backlog *)
  tables : int;
  rejected : int;  (** policy rejections (and refused directives) *)
  shed : int;
  expired : int;
  parse_errors : int;
  disconnects : int;  (** sessions that vanished owing output *)
  stalled : int;  (** chaos: inbound cut by [stall\@K] *)
  forced_disconnects : int;  (** chaos: outbound cut by [disconnect\@K] *)
  garbled : int;  (** chaos: request lines corrupted *)
  closed : summary list;
      (** final counters of every closed session, {e sorted by session
          id}: sessions die in whatever order drain timing dictates, so
          presenting them in close order would make the final stats
          line nondeterministic across runs (and flake the CI grep) *)
}

type t

val create : ?config:config -> service:Service.t -> addr -> t
(** Bind and listen. Raises [Unix.Unix_error] if the address is taken.
    The service must not be used concurrently by anyone else while
    {!run} is live (all access happens on the loop thread). *)

val bound_addr : t -> addr
(** The actual address — resolves [Tcp 0] to the kernel-picked port. *)

val stop : t -> unit
(** Request graceful shutdown. Async-signal-safe (sets an atomic
    flag); callable from a signal handler or another domain. *)

val run : t -> unit
(** The event loop. Blocks until {!stop} (or a fatal listener error),
    then drains and returns. Ignores SIGPIPE for the process. *)

val stats : t -> stats
val render_stats : stats -> string
val stats_json : stats -> Relalg.Json.t
