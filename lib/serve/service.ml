open Relalg

(* Cached verdicts: a verified plan, or the policy's rejection of the
   query. Both are deterministic in (query, environment), so both are
   sound to replay until the environment changes — and, with the
   dependency analysis below, across policy changes that provably do
   not touch what the verdict consulted. *)
type denial_kind = No_candidate | User_denied | Verify_failed

type verdict =
  | Planned of Planner.Optimizer.result
  | Denied of { message : string; kind : denial_kind }

(* What the cache stores per key. [deps] is the entry's authorization
   dependency set (empty for denials — see [set_policy]); [qfp] the
   structural query fingerprint, kept so surviving entries can be
   rekeyed under a new environment fingerprint without the query;
   [env] the environment the verdict was computed under, so entries
   stranded by a non-policy rotation are never migrated into the
   current epoch by a later policy delta. *)
type cached = {
  verdict : verdict;
  deps : Analysis.Fact.Set.t;
  qfp : string;
  env : string;
  exec_plan : Plan.t option;
      (* the hash-consed (DAG-interned) executable form of the
         extended plan, when sharing is on: structurally identical to
         [extended.plan], with subtrees shared across every cached
         plan of the service. Execution runs this form so the sub-plan
         result cache and the batch grouping see one physical node per
         distinct shape. *)
}

(* A cached sub-plan result: one subtree's output table, reusable by
   any plan occurrence whose subcache key matches. The key covers
   everything the bytes depend on — subtree structure, preorder
   position when ciphertext is produced inside (encryption randomness
   is position-derived), the key clusters and schemes over the
   subtree's encrypted attributes, the executor assignment, and the
   environment fingerprint — so equal key implies equal bytes by
   construction. [sub_deps] is the subtree's authorization dependency
   set (Analysis.Deps.of_subplan), consulted by incremental policy
   migration exactly like the plan cache's [deps]. *)
type subentry = {
  table : Engine.Table.t;
  sub_deps : Analysis.Fact.Set.t;
  sub_env : string;
  base_key : string;  (* key minus the environment component *)
}

type invalidation = Rotate | Incremental

type t = {
  mutable policy : Authz.Authorization.t;
  mutable subjects : Authz.Subject.t list;
  mutable config : Authz.Opreq.config;
  mutable pricing : Planner.Pricing.t;
  mutable network : Planner.Network.t;
  mutable env : string;  (* environment fingerprint, cached *)
  invalidation : invalidation;
  base : Planner.Estimate.base_stats;
  deliver_to : Authz.Subject.t option;
  max_latency : float option;
  udfs : (string * Engine.Exec.udf) list;
  tables : (string * Engine.Table.t) list;
  seed : int64;
  pool : Par.pool option;
  max_batch : int;
  now : unit -> float;  (* deadline clock, injectable for tests *)
  cache : cached Lru.t;
  sharing : bool;
  dag : Planner.Dag.t;
  subcache : subentry Lru.t;
  derive_memo : Verify.Derive.memo;
  mutable queries : int;
  mutable rejections : int;
  mutable expired : int;
  mutable invalidated : int;
  mutable reverified : int;
  mutable retained : int;
  mutable subplan_hits : int;
  mutable subplan_stores : int;
  mutable subplan_invalidated : int;
  mutable shared_execs : int;
  mutable plan_ms_total : float;
  mutable exec_ms_total : float;
}

type status = Hit | Miss

type outcome =
  | Table of Engine.Table.t
  | Rejected of string
  | Expired of string

type response = {
  outcome : outcome;
  status : status;
  key : string;
  planned : Planner.Optimizer.result option;
  plan_ms : float;
  exec_ms : float;
}

type request = { query : Plan.t; deadline : float option }

let request ?deadline query = { query; deadline }

let compute_env t =
  Planner.Optimizer.environment_fingerprint ~policy:t.policy
    ~subjects:t.subjects ~config:t.config ~pricing:t.pricing
    ~network:t.network ?deliver_to:t.deliver_to ?max_latency:t.max_latency ()

let create ?(cache_capacity = 128) ?(max_batch = 32) ?pool
    ?(config = Authz.Opreq.default) ?(pricing = Planner.Pricing.make ())
    ?(network = Planner.Network.make ()) ?(base = fun _ -> None) ?deliver_to
    ?max_latency ?(udfs = []) ?(seed = 42L) ?(invalidation = Incremental)
    ?(sharing = true) ?(subcache_capacity = 256) ?(now = Unix.gettimeofday)
    ~policy ~subjects ~tables () =
  if max_batch < 1 then
    invalid_arg (Printf.sprintf "Service.create: max_batch %d < 1" max_batch);
  let deliver_to =
    match deliver_to with
    | Some _ as d -> d
    | None ->
        List.find_opt
          (fun s -> s.Authz.Subject.role = Authz.Subject.User)
          subjects
  in
  let dag = Planner.Dag.create () in
  let t =
    { policy; subjects; config; pricing; network; env = ""; invalidation;
      base; deliver_to; max_latency; udfs; tables; seed; pool; max_batch;
      now; cache = Lru.create ~capacity:cache_capacity; sharing; dag;
      subcache = Lru.create ~capacity:subcache_capacity;
      derive_memo = Verify.Derive.memo ~fp:(Planner.Dag.fingerprint dag) ();
      queries = 0;
      rejections = 0; expired = 0; invalidated = 0; reverified = 0;
      retained = 0; subplan_hits = 0; subplan_stores = 0;
      subplan_invalidated = 0; shared_execs = 0;
      plan_ms_total = 0.0; exec_ms_total = 0.0 }
  in
  t.env <- compute_env t;
  t

let rotate t =
  t.env <- compute_env t;
  Obs.incr "serve.env_rotations"

(* ---- sub-plan cache keys ----

   A subtree occurrence's key must cover every input its result bytes
   are a function of:

   - structure: the collision-free structural fingerprint;
   - position: ciphertext bytes derive randomness from preorder
     positions, so any subtree producing or carrying ciphertext is
     keyed by its root position (crypto-free subtrees — no
     Encrypt/Decrypt, no encrypted-at-rest base — are
     position-independent and share across positions);
   - key clusters: each encrypted attribute's cluster id and scheme
     (cluster keys derive from the keyring by cluster id; clustering
     is a whole-query property, so the same subtree under different
     clusterings yields different bytes);
   - assignment: the executors of the subtree's nodes, conservatively
     — execution is locally simulated so bytes do not depend on it,
     but the dependency facts stored for invalidation do;
   - environment: the leakage gate. Structurally equal subtrees
     planned under different policies, subject populations, recipients
     or configs must never observe each other's results (the paper's
     series-of-queries rule); the environment fingerprint separates
     them even though their bytes would coincide. *)

let kfield s = string_of_int (String.length s) ^ ":" ^ s
let subcache_key ~env base = "mpq-subplan-v1|" ^ base ^ kfield env

let subtree_crypto_attrs plan =
  Plan.fold
    (fun acc n ->
      match Plan.node n with
      | Plan.Encrypt (a, _) | Plan.Decrypt (a, _) -> Attr.Set.union a acc
      | Plan.Base s -> Attr.Set.union (Schema.stored_encrypted s) acc
      | _ -> acc)
    Attr.Set.empty plan

(* Executor name per preorder position of the extended plan — the
   bridge between the DAG-interned executable plan (whose node ids are
   fresh) and the id-keyed assignment: the two are structurally
   identical, so position [p] in one is position [p] in the other. *)
let subjects_by_pos (extended : Authz.Extend.t) =
  let positions = Plan.preorder_positions extended.Authz.Extend.plan in
  let arr = Array.make (Plan.size extended.Authz.Extend.plan) "" in
  Plan.iter
    (fun node ->
      match Hashtbl.find_opt positions (Plan.id node) with
      | Some p ->
          arr.(p) <-
            (match
               Authz.Imap.find_opt (Plan.id node)
                 extended.Authz.Extend.assignment
             with
            | Some s -> Authz.Subject.name s
            | None -> "")
      | None -> ())
    extended.Authz.Extend.plan;
  arr

let base_key_of t ~clusters ~subjects ~pos n =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (kfield (Planner.Dag.fingerprint t.dag n));
  let crypto_free =
    match Planner.Dag.find t.dag n with
    | Some i -> i.Planner.Dag.crypto_free
    | None -> Planner.Dag.crypto_free n
  in
  Buffer.add_string buf
    (kfield (if crypto_free then "" else string_of_int pos));
  Attr.Set.iter
    (fun a ->
      Buffer.add_string buf (kfield (Attr.name a));
      match Authz.Plan_keys.cluster_of_attr clusters a with
      | Some c ->
          Buffer.add_string buf (kfield c.Authz.Plan_keys.id);
          Buffer.add_string buf
            (kfield (Mpq_crypto.Scheme.name c.Authz.Plan_keys.scheme))
      | None -> Buffer.add_string buf (kfield ""))
    (subtree_crypto_attrs n);
  let sz = Plan.size n in
  for p = pos to pos + sz - 1 do
    Buffer.add_string buf (kfield subjects.(p))
  done;
  Buffer.contents buf

(* The positions at which an execution of [exec_plan] may consult or
   feed the sub-plan cache: the root (whole-result memoization — a
   cache-hit query's re-execution becomes one lookup) plus each
   {e maximal} shared subtree (admitting nested shared nodes under an
   already-admitted one would store the same bytes twice; a query
   where only the inner node is shared admits it as its own maximal
   node). Computed on the coordinator — DAG fingerprints and
   occurrence counts are not synchronized. *)
let memo_positions t (r : Planner.Optimizer.result) exec_plan =
  let subjects = subjects_by_pos r.Planner.Optimizer.extended in
  let clusters = r.Planner.Optimizer.clusters in
  let keys = Hashtbl.create 16 in
  let rec walk ~search pos n =
    let shared = Planner.Dag.occurrences t.dag n > 1 in
    if pos = 0 || (search && shared) then begin
      let base = base_key_of t ~clusters ~subjects ~pos n in
      Hashtbl.replace keys pos
        (subcache_key ~env:t.env base, base, Plan.size n)
    end;
    List.iter
      (fun (c, p) -> walk ~search:(not shared) p c)
      (Plan.child_positions n pos)
  in
  walk ~search:true 0 exec_plan;
  keys

type subcache_event =
  | Sub_hit of { pos : int; key : string }
  | Sub_store of {
      pos : int;
      key : string;
      base : string;
      size : int;
      table : Engine.Table.t;
    }

let event_pos = function Sub_hit e -> e.pos | Sub_store e -> e.pos

(* Worker-domain-safe memo closures over a frozen subcache snapshot:
   lookups are pure [Lru.peek]s, every observation is buffered under a
   mutex, and the coordinator replays the buffer — sorted by position,
   so sibling-parallel execution order cannot leak into the replay —
   after the exec phase. The subcache therefore evolves identically at
   any job count, like the plan cache. *)
let make_memo t keys =
  let mutex = Mutex.create () in
  let events = ref [] in
  let record e =
    Mutex.lock mutex;
    events := e :: !events;
    Mutex.unlock mutex
  in
  let memo =
    { Engine.Exec.lookup =
        (fun ~pos _plan ->
          match Hashtbl.find_opt keys pos with
          | None -> None
          | Some (key, _, _) -> (
              match Lru.peek t.subcache key with
              | Some (se : subentry) ->
                  record (Sub_hit { pos; key });
                  Some se.table
              | None -> None));
      store =
        (fun ~pos _plan table ->
          match Hashtbl.find_opt keys pos with
          | None -> ()
          | Some (key, base, size) ->
              record (Sub_store { pos; key; base; size; table }));
    }
  in
  (memo, events)

(* Coordinator-side replay of one execution's buffered events, in
   position order: hits refresh recency and count; stores compute the
   subtree's dependency facts (against the extended tree's matching
   position range) and insert. A key two same-round executions both
   computed is stored once — the bytes are identical by key
   construction. *)
let replay_subcache t (r : Planner.Optimizer.result) events =
  let evs =
    List.sort (fun a b -> compare (event_pos a) (event_pos b)) !events
  in
  List.iter
    (function
      | Sub_hit { key; _ } ->
          ignore (Lru.find t.subcache key);
          t.subplan_hits <- t.subplan_hits + 1;
          Obs.incr "serve.subcache.hits"
      | Sub_store { pos; key; base; size; table } ->
          if not (Lru.mem t.subcache key) then begin
            let sub_deps =
              Analysis.Deps.of_subplan ?deliver_to:t.deliver_to
                ~derive_memo:t.derive_memo
                ~extended:r.Planner.Optimizer.extended
                ~clusters:r.Planner.Optimizer.clusters ~range:(pos, size) ()
            in
            t.subplan_stores <- t.subplan_stores + 1;
            Obs.incr "serve.subcache.stores";
            Lru.add t.subcache key
              { table; sub_deps; sub_env = t.env; base_key = base }
          end)
    evs

(* Incremental invalidation (policy changes only): diff the old and new
   policies as fact sets and migrate each same-epoch entry under the
   protocol the dependency analysis justifies (see lib/analysis):

   - a removed fact in the entry's dependency set may have been
     load-bearing for its verification: drop;
   - added facts cannot break Def. 4.1 checks (grants are monotone),
     but can make the cached plan cost-stale; the entry is kept after
     one incremental verifier pass re-certifies it — no replanning;
   - a delta disjoint from the dependency set provably cannot change
     any verdict: the entry is rekeyed under the new environment
     fingerprint, recency intact.

   Denials carry no plan to compute dependencies from, so they use the
   monotonicity argument alone: planner denials (no candidate, user
   gate) cannot be fixed by revoking more, so they survive revoke-only
   deltas and are dropped on any grant; verifier denials are dropped
   on any view change (re-planning under the new policy may choose a
   different extension entirely). *)
let migrate t ~old_policy ~old_env =
  let dep_subjects = ref Authz.Subject.Set.empty in
  let _ =
    Lru.remap t.cache (fun key c ->
        Analysis.Fact.Set.iter
          (fun f ->
            dep_subjects :=
              Authz.Subject.Set.add f.Analysis.Fact.subject !dep_subjects)
          c.deps;
        Some (key, c))
  in
  let subjects =
    t.subjects
    @ Authz.Subject.Set.elements !dep_subjects
    @ (match t.deliver_to with Some u -> [ u ] | None -> [])
  in
  match
    Analysis.Delta.diff ~subjects ~old_policy ~new_policy:t.policy ()
  with
  | `Incompatible ->
      (* schema change: old entries are not comparable fact-by-fact.
         The fingerprint rotation already happened, so they are
         unreachable; leave them to age out. *)
      Obs.incr "serve.invalidation.incompatible"
  | `Delta d ->
      let any_grant = not (Analysis.Fact.Set.is_empty d.Analysis.Delta.added) in
      let any_change = not (Analysis.Delta.is_empty d) in
      let reverified = ref 0 and retained = ref 0 in
      let rekey c =
        Some
          ( Planner.Optimizer.cache_key_of ~env:t.env c.qfp,
            { c with env = t.env } )
      in
      let dropped =
        Lru.remap t.cache (fun key c ->
            if not (String.equal c.env old_env) then
              (* stranded by an earlier non-policy rotation: already
                 unreachable, not ours to migrate *)
              Some (key, c)
            else
              let keep c =
                incr retained;
                rekey c
              in
              match c.verdict with
              | Denied { kind = Verify_failed; _ } ->
                  if any_change then None else keep c
              | Denied _ -> if any_grant then None else keep c
              | Planned r ->
                  if
                    not
                      (Analysis.Fact.Set.is_empty
                         (Analysis.Fact.Set.inter d.Analysis.Delta.removed
                            c.deps))
                  then None
                  else if
                    Analysis.Fact.Set.is_empty
                      (Analysis.Fact.Set.inter d.Analysis.Delta.added c.deps)
                  then keep c
                  else begin
                    incr reverified;
                    let diags =
                      Verify.Verifier.run
                        { Verify.Verifier.policy = t.policy;
                          config = r.Planner.Optimizer.config;
                          extended = r.Planner.Optimizer.extended;
                          clusters = r.Planner.Optimizer.clusters;
                          requests = r.Planner.Optimizer.requests }
                    in
                    if Verify.Diag.has_errors diags then None else keep c
                  end)
      in
      t.invalidated <- t.invalidated + dropped;
      t.reverified <- t.reverified + !reverified;
      t.retained <- t.retained + !retained;
      Obs.incr ~by:dropped "serve.invalidation.dropped";
      Obs.incr ~by:!reverified "serve.invalidation.reverified";
      Obs.incr ~by:!retained "serve.invalidation.retained";
      (* Sub-plan results migrate under a simpler protocol than whole
         plans: result bytes are policy-independent (the key fixes
         them), so there is nothing to re-verify — the dependency set
         gates only whether reusing the result remains {e authorized}.
         A removed fact the subtree's certification consumed drops the
         entry for every consumer at once (shared nodes invalidate
         once, not per query); grants are monotone, so any other delta
         rekeys the entry under the new environment, recency intact. *)
      let sub_dropped =
        Lru.remap t.subcache (fun key se ->
            if not (String.equal se.sub_env old_env) then Some (key, se)
            else if
              not
                (Analysis.Fact.Set.is_empty
                   (Analysis.Fact.Set.inter d.Analysis.Delta.removed
                      se.sub_deps))
            then None
            else
              Some
                ( subcache_key ~env:t.env se.base_key,
                  { se with sub_env = t.env } ))
      in
      t.subplan_invalidated <- t.subplan_invalidated + sub_dropped;
      Obs.incr ~by:sub_dropped "serve.subcache.invalidated"

let set_policy ?subjects t policy =
  let old_policy = t.policy and old_env = t.env in
  t.policy <- policy;
  (match subjects with Some s -> t.subjects <- s | None -> ());
  rotate t;
  match t.invalidation with
  | Rotate -> ()
  | Incremental ->
      (* a subject-population swap changes which views matter in ways
         the per-entry dependency sets cannot bound: fall back to the
         rotation the fingerprint change already performed *)
      if subjects = None then migrate t ~old_policy ~old_env

let set_config t config =
  t.config <- config;
  rotate t

let set_pricing t pricing =
  t.pricing <- pricing;
  rotate t

let set_network t network =
  t.network <- network;
  rotate t

let invalidate t =
  Lru.clear t.cache;
  Lru.clear t.subcache;
  Planner.Dag.clear t.dag;
  Verify.Derive.memo_clear t.derive_memo

let environment t = t.env

let parse t sql =
  let catalog = Authz.Authorization.schemas t.policy in
  let plan = Mpq_sql.Sql_plan.parse_and_plan ~catalog sql in
  Planner.Join_order.reorder ~base:t.base (Planner.Rewrite.normalize plan)

let now_ms () = Unix.gettimeofday () *. 1000.0

(* Plan + verify one cold query. Exactly one verifier pass guards every
   insertion: the optimizer's own self-check when it is enabled
   (the default), an explicit pass here when a caller has turned the
   global gate off — the cache's "verified entries only" contract must
   not depend on ambient flag state. *)
let plan_once t ~qfp query =
  Obs.with_span "serve.plan" @@ fun () ->
  let verified_by_planner = !Planner.Optimizer.self_check in
  let denied kind message =
    { verdict = Denied { message; kind }; deps = Analysis.Fact.Set.empty;
      qfp; env = t.env; exec_plan = None }
  in
  match
    let r =
      Planner.Optimizer.plan ~policy:t.policy ~subjects:t.subjects
        ~config:t.config ~pricing:t.pricing ~network:t.network ~base:t.base
        ?deliver_to:t.deliver_to ?max_latency:t.max_latency query
    in
    if not verified_by_planner then begin
      let diags =
        Verify.Verifier.run
          { Verify.Verifier.policy = t.policy;
            config = r.Planner.Optimizer.config;
            extended = r.Planner.Optimizer.extended;
            clusters = r.Planner.Optimizer.clusters;
            requests = r.Planner.Optimizer.requests }
      in
      if Verify.Diag.has_errors diags then
        raise
          (Planner.Optimizer.Verification_failed
             ("serve: cold plan failed verification:\n"
             ^ Verify.Diag.render (Verify.Diag.errors diags)))
    end;
    r
  with
  | r ->
      (* deps and the DAG interning happen in [finalize], on the
         coordinator: both thread shared un-synchronized state (the
         derivation memo, the DAG store) and this function runs in the
         parallel plan phase *)
      { verdict = Planned r; deps = Analysis.Fact.Set.empty; qfp;
        env = t.env; exec_plan = None }
  | exception Planner.Optimizer.No_candidate msg -> denied No_candidate msg
  | exception Planner.Optimizer.User_not_authorized msg ->
      denied User_denied msg
  | exception Planner.Optimizer.Verification_failed msg ->
      (* fail closed: a plan the verifier will not certify is never
         served (or cached as servable). The verdict — including the
         full diagnostic rendering — is deterministic in
         (query, environment): diagnostics cite canonical preorder
         positions, not allocation-counter node ids, so the complete
         message replays byte-identically from cache. *)
      denied Verify_failed msg

(* Coordinator-side completion of a freshly planned entry, at cache
   insertion: compute the dependency facts (sharing profile
   derivations through the service memo) and intern the extended plan
   into the DAG so its subtrees join the shared-node store. *)
let finalize t query entry =
  match entry.verdict with
  | Denied _ -> entry
  | Planned r ->
      let deps =
        Analysis.Deps.of_extended ?deliver_to:t.deliver_to ~original:query
          ~derive_memo:t.derive_memo ~extended:r.Planner.Optimizer.extended
          ~clusters:r.Planner.Optimizer.clusters ()
      in
      let exec_plan =
        if t.sharing then
          Some
            (Planner.Dag.intern t.dag
               r.Planner.Optimizer.extended.Authz.Extend.plan)
        else None
      in
      { entry with deps; exec_plan }

let execute ?memo t (r : Planner.Optimizer.result) plan =
  Obs.with_span "serve.exec" @@ fun () ->
  (* fresh keyring per execution: ciphertext randomness derives from
     (node preorder position, row index), so equal seeds reproduce
     equal bytes — on the DAG-interned plan exactly as on the original
     tree, since the executor threads positions per occurrence *)
  let keyring = Mpq_crypto.Keyring.create ~seed:t.seed () in
  let crypto = Engine.Enc_exec.make keyring r.Planner.Optimizer.clusters in
  let ctx = Engine.Exec.context ~udfs:t.udfs ~crypto t.tables in
  Engine.Exec.run ?pool:t.pool ?memo ctx plan

let run_tasks t thunks =
  match (t.pool, thunks) with
  | Some pool, _ :: _ :: _ -> Par.run_all pool thunks
  | _ -> List.map (fun f -> f ()) thunks

(* One admission-bounded round of the three-phase protocol. Requests
   whose deadline has already passed when the round starts are refused
   up front — no fingerprinting, no cache probe, no planning: a refusal
   must never disturb the cache's observable evolution. *)
let serve_round t requests =
  Obs.with_span "serve.batch" @@ fun () ->
  let before = Lru.stats t.cache in
  let admit_now = t.now () in
  let expired_response () =
    { outcome = Expired "at admission"; status = Miss;
      key = ""; planned = None; plan_ms = 0.0; exec_ms = 0.0 }
  in
  (* phase 1 — probe: fingerprint every live request, pick the distinct
     missing keys. Pure: no cache mutation, no recency refresh. *)
  let keyed =
    List.map
      (fun { query = q; deadline } ->
        match deadline with
        | Some d when admit_now > d -> `Expired
        | _ ->
            let t0 = now_ms () in
            let qfp = Planner.Fingerprint.of_plan q in
            let key = Planner.Optimizer.cache_key_of ~env:t.env qfp in
            `Live (q, qfp, key, deadline, now_ms () -. t0))
      requests
  in
  let to_plan =
    List.rev
      (List.fold_left
         (fun acc -> function
           | `Expired -> acc
           | `Live (q, qfp, key, _, _) ->
               if Lru.mem t.cache key || List.mem_assoc key acc then acc
               else (key, (q, qfp)) :: acc)
         [] keyed)
  in
  (* phase 2 — plan each distinct missing key in parallel. Planning is
     pure (the plan-node id counter is atomic), so tasks only race for
     CPU; planner rejections become cacheable Denied entries, anything
     else propagates. *)
  let planned =
    run_tasks t
      (List.map
         (fun (key, (q, qfp)) () ->
           let t0 = now_ms () in
           let entry = plan_once t ~qfp q in
           (key, (entry, now_ms () -. t0)))
         to_plan)
  in
  (* phase 3 — replay the cache protocol sequentially in request
     order: the only phase that mutates the cache, so its evolution is
     independent of the job count. A key that repeats within the batch
     misses once and hits from then on, exactly as in serial serving. *)
  let resolved =
    List.map
      (function
        | `Expired -> `Expired
        | `Live (q, qfp, key, deadline, key_ms) -> (
            let t0 = now_ms () in
            match Lru.find t.cache key with
            | Some entry ->
                `Resolved (key, entry, deadline, Hit, key_ms +. (now_ms () -. t0))
            | None ->
                let entry, plan_ms =
                  match List.assoc_opt key planned with
                  | Some e -> e
                  | None ->
                      (* the probe saw this key resident, but an earlier
                         insertion in this very round evicted it. Replan on
                         the coordinator: a function of request order and
                         cache state only, so still job-count independent. *)
                      let p0 = now_ms () in
                      let entry = plan_once t ~qfp q in
                      (entry, now_ms () -. p0)
                in
                (* dependency facts + DAG interning: coordinator-only
                   state, so it happens here rather than in the
                   parallel plan phase *)
                let entry = finalize t q entry in
                Lru.add t.cache key entry;
                `Resolved
                  (key, entry, deadline, Miss,
                   key_ms +. (now_ms () -. t0) +. plan_ms)))
      keyed
  in
  (* the second deadline checkpoint, between plan and exec: planning
     (and the cache insertion it fed) is kept — the work is not wasted,
     the entry serves future hits — but a request past its deadline is
     refused rather than executed. One clock read for the whole round
     keeps the refusal set a function of (requests, round start). *)
  let exec_now = t.now () in
  (* classify executions on the coordinator: batch-level work sharing
     groups live planned requests by cache key, so each distinct entry
     executes once per round and later occurrences alias the
     (immutable) result table. With sharing on, executions run the
     DAG-interned plan under the sub-plan memo (frozen-snapshot
     lookups, buffered stores). Classification order is request order,
     so the representative choice — and with it every observable
     effect — is job-count independent. *)
  let rep_seen = Hashtbl.create 8 in
  let classified =
    List.map
      (function
        | `Expired -> `Expired
        | `Resolved (key, entry, deadline, status, plan_ms) -> (
            match entry.verdict with
            | Denied { message; _ } -> `Denied (key, message, status, plan_ms)
            | Planned r -> (
                match deadline with
                | Some d when exec_now > d -> `Late (key, r, status, plan_ms)
                | _ ->
                    if t.sharing && Hashtbl.mem rep_seen key then
                      `Alias (key, r, status, plan_ms)
                    else begin
                      Hashtbl.replace rep_seen key ();
                      let memo =
                        match (t.sharing, entry.exec_plan) with
                        | true, Some ep ->
                            let keys = memo_positions t r ep in
                            let memo, events = make_memo t keys in
                            Some (ep, memo, events)
                        | _ -> None
                      in
                      `Run (key, r, status, plan_ms, memo)
                    end)))
      resolved
  in
  (* execute representatives in parallel (results are
     position-deterministic) *)
  let executed =
    run_tasks t
      (List.filter_map
         (function
           | `Run (key, r, _, _, memo) ->
               Some
                 (fun () ->
                   let t0 = now_ms () in
                   let table =
                     match memo with
                     | Some (ep, m, _) -> execute ~memo:m t r ep
                     | None ->
                         execute t r
                           r.Planner.Optimizer.extended.Authz.Extend.plan
                   in
                   (key, (table, now_ms () -. t0)))
           | _ -> None)
         classified)
  in
  (* replay the buffered sub-plan cache events sequentially, in
     request order (and position order within one execution): the only
     subcache mutations, so its evolution matches any job count *)
  List.iter
    (function
      | `Run (_, r, _, _, Some (_, _, events)) -> replay_subcache t r events
      | _ -> ())
    classified;
  (* assemble responses in request order *)
  let responses =
    List.map
      (function
        | `Expired -> expired_response ()
        | `Denied (key, message, status, plan_ms) ->
            { outcome = Rejected message; status; key; planned = None;
              plan_ms; exec_ms = 0.0 }
        | `Late (key, r, status, plan_ms) ->
            { outcome = Expired "between plan and exec"; status; key;
              planned = Some r; plan_ms; exec_ms = 0.0 }
        | `Run (key, r, status, plan_ms, _) ->
            let table, exec_ms = List.assoc key executed in
            { outcome = Table table; status; key; planned = Some r; plan_ms;
              exec_ms }
        | `Alias (key, r, status, plan_ms) ->
            (* aliased onto the representative execution of the same
               key: same immutable table, no second execution *)
            t.shared_execs <- t.shared_execs + 1;
            Obs.incr "serve.exec.shared";
            let table, _ = List.assoc key executed in
            { outcome = Table table; status; key; planned = Some r; plan_ms;
              exec_ms = 0.0 })
      classified
  in
  (* accounting (coordinator only, deterministic) *)
  let after = Lru.stats t.cache in
  Obs.incr ~by:(after.Lru.hits - before.Lru.hits) "serve.cache.hits";
  Obs.incr ~by:(after.Lru.misses - before.Lru.misses) "serve.cache.misses";
  Obs.incr ~by:(after.Lru.evictions - before.Lru.evictions)
    "serve.cache.evictions";
  List.iter
    (fun r ->
      t.queries <- t.queries + 1;
      Obs.incr "serve.queries";
      (match r.outcome with
      | Rejected _ ->
          t.rejections <- t.rejections + 1;
          Obs.incr "serve.rejections"
      | Expired _ ->
          t.expired <- t.expired + 1;
          Obs.incr "serve.expired"
      | Table _ -> ());
      t.plan_ms_total <- t.plan_ms_total +. r.plan_ms;
      t.exec_ms_total <- t.exec_ms_total +. r.exec_ms;
      Obs.record "serve.plan_ms" r.plan_ms;
      Obs.record "serve.exec_ms" r.exec_ms;
      Obs.record "serve.query_ms" (r.plan_ms +. r.exec_ms))
    responses;
  responses

let rec admit t = function
  | [] -> []
  | requests ->
      let rec take n acc = function
        | rest when n = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | q :: rest -> take (n - 1) (q :: acc) rest
      in
      let round, rest = take t.max_batch [] requests in
      let served = serve_round t round in
      served @ admit t rest

let submit_batch_requests t requests = admit t requests
let submit_batch t queries = admit t (List.map request queries)

let submit_request t req =
  match serve_round t [ req ] with
  | [ r ] -> r
  | _ -> assert false

let submit t query = submit_request t (request query)
let submit_sql t sql = submit t (parse t sql)

type stats = {
  queries : int;
  rejections : int;
  expired : int;
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  invalidated : int;
  reverified : int;
  retained : int;
  entries : int;
  capacity : int;
  subplan_hits : int;
  subplan_stores : int;
  subplan_invalidated : int;
  subplan_entries : int;
  shared_execs : int;
  plan_ms : float;
  exec_ms : float;
}

let stats t =
  let c = Lru.stats t.cache in
  { queries = t.queries; rejections = t.rejections; expired = t.expired;
    hits = c.Lru.hits;
    misses = c.Lru.misses; insertions = c.Lru.insertions;
    evictions = c.Lru.evictions; invalidated = t.invalidated;
    reverified = t.reverified; retained = t.retained;
    entries = Lru.length t.cache; capacity = Lru.capacity t.cache;
    subplan_hits = t.subplan_hits; subplan_stores = t.subplan_stores;
    subplan_invalidated = t.subplan_invalidated;
    subplan_entries = Lru.length t.subcache; shared_execs = t.shared_execs;
    plan_ms = t.plan_ms_total; exec_ms = t.exec_ms_total }

let hit_rate s =
  let looked = s.hits + s.misses in
  if looked = 0 then 0.0 else float_of_int s.hits /. float_of_int looked

let cache_keys t = Lru.keys t.cache
let subcache_keys t = Lru.keys t.subcache
let dag_stats t = Planner.Dag.stats t.dag
let derivations_shared t = Verify.Derive.memo_hits t.derive_memo

let subplan_hit_rate s =
  let looked = s.subplan_hits + s.subplan_stores in
  if looked = 0 then 0.0
  else float_of_int s.subplan_hits /. float_of_int looked

let render_stats s =
  Printf.sprintf
    "%d queries (%d rejected, %d expired): %d hits, %d misses (%.1f%% hit \
     rate), %d/%d entries, %d evictions; %d invalidated, %d reverified, \
     %d retained; subplans %d hits / %d stores (%d entries, %d \
     invalidated), %d shared execs; plan %.2f ms, exec %.2f ms"
    s.queries s.rejections s.expired s.hits s.misses
    (100.0 *. hit_rate s)
    s.entries s.capacity s.evictions s.invalidated s.reverified s.retained
    s.subplan_hits s.subplan_stores s.subplan_entries s.subplan_invalidated
    s.shared_execs s.plan_ms s.exec_ms

let stats_json s =
  Json.Obj
    [ ("queries", Json.Int s.queries);
      ("rejections", Json.Int s.rejections);
      ("expired", Json.Int s.expired);
      ("hits", Json.Int s.hits);
      ("misses", Json.Int s.misses);
      ("hit_rate", Json.Float (hit_rate s));
      ("insertions", Json.Int s.insertions);
      ("evictions", Json.Int s.evictions);
      ("invalidated", Json.Int s.invalidated);
      ("reverified", Json.Int s.reverified);
      ("retained", Json.Int s.retained);
      ("entries", Json.Int s.entries);
      ("capacity", Json.Int s.capacity);
      ("subplan_hits", Json.Int s.subplan_hits);
      ("subplan_stores", Json.Int s.subplan_stores);
      ("subplan_hit_rate", Json.Float (subplan_hit_rate s));
      ("subplan_invalidated", Json.Int s.subplan_invalidated);
      ("subplan_entries", Json.Int s.subplan_entries);
      ("shared_execs", Json.Int s.shared_execs);
      ("plan_ms", Json.Float s.plan_ms);
      ("exec_ms", Json.Float s.exec_ms) ]
