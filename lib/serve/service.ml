open Relalg

(* Cached verdicts: a verified plan, or the policy's rejection of the
   query. Both are deterministic in (query, environment), so both are
   sound to replay until the environment changes — and, with the
   dependency analysis below, across policy changes that provably do
   not touch what the verdict consulted. *)
type denial_kind = No_candidate | User_denied | Verify_failed

type verdict =
  | Planned of Planner.Optimizer.result
  | Denied of { message : string; kind : denial_kind }

(* What the cache stores per key. [deps] is the entry's authorization
   dependency set (empty for denials — see [set_policy]); [qfp] the
   structural query fingerprint, kept so surviving entries can be
   rekeyed under a new environment fingerprint without the query;
   [env] the environment the verdict was computed under, so entries
   stranded by a non-policy rotation are never migrated into the
   current epoch by a later policy delta. *)
type cached = {
  verdict : verdict;
  deps : Analysis.Fact.Set.t;
  qfp : string;
  env : string;
}

type invalidation = Rotate | Incremental

type t = {
  mutable policy : Authz.Authorization.t;
  mutable subjects : Authz.Subject.t list;
  mutable config : Authz.Opreq.config;
  mutable pricing : Planner.Pricing.t;
  mutable network : Planner.Network.t;
  mutable env : string;  (* environment fingerprint, cached *)
  invalidation : invalidation;
  base : Planner.Estimate.base_stats;
  deliver_to : Authz.Subject.t option;
  max_latency : float option;
  udfs : (string * Engine.Exec.udf) list;
  tables : (string * Engine.Table.t) list;
  seed : int64;
  pool : Par.pool option;
  max_batch : int;
  now : unit -> float;  (* deadline clock, injectable for tests *)
  cache : cached Lru.t;
  mutable queries : int;
  mutable rejections : int;
  mutable expired : int;
  mutable invalidated : int;
  mutable reverified : int;
  mutable retained : int;
  mutable plan_ms_total : float;
  mutable exec_ms_total : float;
}

type status = Hit | Miss

type outcome =
  | Table of Engine.Table.t
  | Rejected of string
  | Expired of string

type response = {
  outcome : outcome;
  status : status;
  key : string;
  planned : Planner.Optimizer.result option;
  plan_ms : float;
  exec_ms : float;
}

type request = { query : Plan.t; deadline : float option }

let request ?deadline query = { query; deadline }

let compute_env t =
  Planner.Optimizer.environment_fingerprint ~policy:t.policy
    ~subjects:t.subjects ~config:t.config ~pricing:t.pricing
    ~network:t.network ?deliver_to:t.deliver_to ?max_latency:t.max_latency ()

let create ?(cache_capacity = 128) ?(max_batch = 32) ?pool
    ?(config = Authz.Opreq.default) ?(pricing = Planner.Pricing.make ())
    ?(network = Planner.Network.make ()) ?(base = fun _ -> None) ?deliver_to
    ?max_latency ?(udfs = []) ?(seed = 42L) ?(invalidation = Incremental)
    ?(now = Unix.gettimeofday) ~policy ~subjects ~tables () =
  if max_batch < 1 then
    invalid_arg (Printf.sprintf "Service.create: max_batch %d < 1" max_batch);
  let deliver_to =
    match deliver_to with
    | Some _ as d -> d
    | None ->
        List.find_opt
          (fun s -> s.Authz.Subject.role = Authz.Subject.User)
          subjects
  in
  let t =
    { policy; subjects; config; pricing; network; env = ""; invalidation;
      base; deliver_to; max_latency; udfs; tables; seed; pool; max_batch;
      now; cache = Lru.create ~capacity:cache_capacity; queries = 0;
      rejections = 0; expired = 0; invalidated = 0; reverified = 0;
      retained = 0; plan_ms_total = 0.0; exec_ms_total = 0.0 }
  in
  t.env <- compute_env t;
  t

let rotate t =
  t.env <- compute_env t;
  Obs.incr "serve.env_rotations"

(* Incremental invalidation (policy changes only): diff the old and new
   policies as fact sets and migrate each same-epoch entry under the
   protocol the dependency analysis justifies (see lib/analysis):

   - a removed fact in the entry's dependency set may have been
     load-bearing for its verification: drop;
   - added facts cannot break Def. 4.1 checks (grants are monotone),
     but can make the cached plan cost-stale; the entry is kept after
     one incremental verifier pass re-certifies it — no replanning;
   - a delta disjoint from the dependency set provably cannot change
     any verdict: the entry is rekeyed under the new environment
     fingerprint, recency intact.

   Denials carry no plan to compute dependencies from, so they use the
   monotonicity argument alone: planner denials (no candidate, user
   gate) cannot be fixed by revoking more, so they survive revoke-only
   deltas and are dropped on any grant; verifier denials are dropped
   on any view change (re-planning under the new policy may choose a
   different extension entirely). *)
let migrate t ~old_policy ~old_env =
  let dep_subjects = ref Authz.Subject.Set.empty in
  let _ =
    Lru.remap t.cache (fun key c ->
        Analysis.Fact.Set.iter
          (fun f ->
            dep_subjects :=
              Authz.Subject.Set.add f.Analysis.Fact.subject !dep_subjects)
          c.deps;
        Some (key, c))
  in
  let subjects =
    t.subjects
    @ Authz.Subject.Set.elements !dep_subjects
    @ (match t.deliver_to with Some u -> [ u ] | None -> [])
  in
  match
    Analysis.Delta.diff ~subjects ~old_policy ~new_policy:t.policy ()
  with
  | `Incompatible ->
      (* schema change: old entries are not comparable fact-by-fact.
         The fingerprint rotation already happened, so they are
         unreachable; leave them to age out. *)
      Obs.incr "serve.invalidation.incompatible"
  | `Delta d ->
      let any_grant = not (Analysis.Fact.Set.is_empty d.Analysis.Delta.added) in
      let any_change = not (Analysis.Delta.is_empty d) in
      let reverified = ref 0 and retained = ref 0 in
      let rekey c =
        Some
          ( Planner.Optimizer.cache_key_of ~env:t.env c.qfp,
            { c with env = t.env } )
      in
      let dropped =
        Lru.remap t.cache (fun key c ->
            if not (String.equal c.env old_env) then
              (* stranded by an earlier non-policy rotation: already
                 unreachable, not ours to migrate *)
              Some (key, c)
            else
              let keep c =
                incr retained;
                rekey c
              in
              match c.verdict with
              | Denied { kind = Verify_failed; _ } ->
                  if any_change then None else keep c
              | Denied _ -> if any_grant then None else keep c
              | Planned r ->
                  if
                    not
                      (Analysis.Fact.Set.is_empty
                         (Analysis.Fact.Set.inter d.Analysis.Delta.removed
                            c.deps))
                  then None
                  else if
                    Analysis.Fact.Set.is_empty
                      (Analysis.Fact.Set.inter d.Analysis.Delta.added c.deps)
                  then keep c
                  else begin
                    incr reverified;
                    let diags =
                      Verify.Verifier.run
                        { Verify.Verifier.policy = t.policy;
                          config = r.Planner.Optimizer.config;
                          extended = r.Planner.Optimizer.extended;
                          clusters = r.Planner.Optimizer.clusters;
                          requests = r.Planner.Optimizer.requests }
                    in
                    if Verify.Diag.has_errors diags then None else keep c
                  end)
      in
      t.invalidated <- t.invalidated + dropped;
      t.reverified <- t.reverified + !reverified;
      t.retained <- t.retained + !retained;
      Obs.incr ~by:dropped "serve.invalidation.dropped";
      Obs.incr ~by:!reverified "serve.invalidation.reverified";
      Obs.incr ~by:!retained "serve.invalidation.retained"

let set_policy ?subjects t policy =
  let old_policy = t.policy and old_env = t.env in
  t.policy <- policy;
  (match subjects with Some s -> t.subjects <- s | None -> ());
  rotate t;
  match t.invalidation with
  | Rotate -> ()
  | Incremental ->
      (* a subject-population swap changes which views matter in ways
         the per-entry dependency sets cannot bound: fall back to the
         rotation the fingerprint change already performed *)
      if subjects = None then migrate t ~old_policy ~old_env

let set_config t config =
  t.config <- config;
  rotate t

let set_pricing t pricing =
  t.pricing <- pricing;
  rotate t

let set_network t network =
  t.network <- network;
  rotate t

let invalidate t = Lru.clear t.cache
let environment t = t.env

let parse t sql =
  let catalog = Authz.Authorization.schemas t.policy in
  let plan = Mpq_sql.Sql_plan.parse_and_plan ~catalog sql in
  Planner.Join_order.reorder ~base:t.base (Planner.Rewrite.normalize plan)

let now_ms () = Unix.gettimeofday () *. 1000.0

(* Plan + verify one cold query. Exactly one verifier pass guards every
   insertion: the optimizer's own self-check when it is enabled
   (the default), an explicit pass here when a caller has turned the
   global gate off — the cache's "verified entries only" contract must
   not depend on ambient flag state. *)
let plan_once t ~qfp query =
  Obs.with_span "serve.plan" @@ fun () ->
  let verified_by_planner = !Planner.Optimizer.self_check in
  let denied kind message =
    { verdict = Denied { message; kind }; deps = Analysis.Fact.Set.empty;
      qfp; env = t.env }
  in
  match
    let r =
      Planner.Optimizer.plan ~policy:t.policy ~subjects:t.subjects
        ~config:t.config ~pricing:t.pricing ~network:t.network ~base:t.base
        ?deliver_to:t.deliver_to ?max_latency:t.max_latency query
    in
    if not verified_by_planner then begin
      let diags =
        Verify.Verifier.run
          { Verify.Verifier.policy = t.policy;
            config = r.Planner.Optimizer.config;
            extended = r.Planner.Optimizer.extended;
            clusters = r.Planner.Optimizer.clusters;
            requests = r.Planner.Optimizer.requests }
      in
      if Verify.Diag.has_errors diags then
        raise
          (Planner.Optimizer.Verification_failed
             ("serve: cold plan failed verification:\n"
             ^ Verify.Diag.render (Verify.Diag.errors diags)))
    end;
    r
  with
  | r ->
      let deps =
        Analysis.Deps.of_extended ?deliver_to:t.deliver_to ~original:query
          ~extended:r.Planner.Optimizer.extended
          ~clusters:r.Planner.Optimizer.clusters ()
      in
      { verdict = Planned r; deps; qfp; env = t.env }
  | exception Planner.Optimizer.No_candidate msg -> denied No_candidate msg
  | exception Planner.Optimizer.User_not_authorized msg ->
      denied User_denied msg
  | exception Planner.Optimizer.Verification_failed msg ->
      (* fail closed: a plan the verifier will not certify is never
         served (or cached as servable). The verdict — including the
         full diagnostic rendering — is deterministic in
         (query, environment): diagnostics cite canonical preorder
         positions, not allocation-counter node ids, so the complete
         message replays byte-identically from cache. *)
      denied Verify_failed msg

let execute t (r : Planner.Optimizer.result) =
  Obs.with_span "serve.exec" @@ fun () ->
  (* fresh keyring per execution: ciphertext randomness derives from
     (node id, row index), so equal seeds reproduce equal bytes *)
  let keyring = Mpq_crypto.Keyring.create ~seed:t.seed () in
  let crypto = Engine.Enc_exec.make keyring r.Planner.Optimizer.clusters in
  let ctx = Engine.Exec.context ~udfs:t.udfs ~crypto t.tables in
  Engine.Exec.run ?pool:t.pool ctx
    r.Planner.Optimizer.extended.Authz.Extend.plan

let run_tasks t thunks =
  match (t.pool, thunks) with
  | Some pool, _ :: _ :: _ -> Par.run_all pool thunks
  | _ -> List.map (fun f -> f ()) thunks

(* One admission-bounded round of the three-phase protocol. Requests
   whose deadline has already passed when the round starts are refused
   up front — no fingerprinting, no cache probe, no planning: a refusal
   must never disturb the cache's observable evolution. *)
let serve_round t requests =
  Obs.with_span "serve.batch" @@ fun () ->
  let before = Lru.stats t.cache in
  let admit_now = t.now () in
  let expired_response () =
    { outcome = Expired "at admission"; status = Miss;
      key = ""; planned = None; plan_ms = 0.0; exec_ms = 0.0 }
  in
  (* phase 1 — probe: fingerprint every live request, pick the distinct
     missing keys. Pure: no cache mutation, no recency refresh. *)
  let keyed =
    List.map
      (fun { query = q; deadline } ->
        match deadline with
        | Some d when admit_now > d -> `Expired
        | _ ->
            let t0 = now_ms () in
            let qfp = Planner.Fingerprint.of_plan q in
            let key = Planner.Optimizer.cache_key_of ~env:t.env qfp in
            `Live (q, qfp, key, deadline, now_ms () -. t0))
      requests
  in
  let to_plan =
    List.rev
      (List.fold_left
         (fun acc -> function
           | `Expired -> acc
           | `Live (q, qfp, key, _, _) ->
               if Lru.mem t.cache key || List.mem_assoc key acc then acc
               else (key, (q, qfp)) :: acc)
         [] keyed)
  in
  (* phase 2 — plan each distinct missing key in parallel. Planning is
     pure (the plan-node id counter is atomic), so tasks only race for
     CPU; planner rejections become cacheable Denied entries, anything
     else propagates. *)
  let planned =
    run_tasks t
      (List.map
         (fun (key, (q, qfp)) () ->
           let t0 = now_ms () in
           let entry = plan_once t ~qfp q in
           (key, (entry, now_ms () -. t0)))
         to_plan)
  in
  (* phase 3 — replay the cache protocol sequentially in request
     order: the only phase that mutates the cache, so its evolution is
     independent of the job count. A key that repeats within the batch
     misses once and hits from then on, exactly as in serial serving. *)
  let resolved =
    List.map
      (function
        | `Expired -> `Expired
        | `Live (q, qfp, key, deadline, key_ms) -> (
            let t0 = now_ms () in
            match Lru.find t.cache key with
            | Some entry ->
                `Resolved (key, entry, deadline, Hit, key_ms +. (now_ms () -. t0))
            | None ->
                let entry, plan_ms =
                  match List.assoc_opt key planned with
                  | Some e -> e
                  | None ->
                      (* the probe saw this key resident, but an earlier
                         insertion in this very round evicted it. Replan on
                         the coordinator: a function of request order and
                         cache state only, so still job-count independent. *)
                      let p0 = now_ms () in
                      let entry = plan_once t ~qfp q in
                      (entry, now_ms () -. p0)
                in
                Lru.add t.cache key entry;
                `Resolved
                  (key, entry, deadline, Miss,
                   key_ms +. (now_ms () -. t0) +. plan_ms)))
      keyed
  in
  (* the second deadline checkpoint, between plan and exec: planning
     (and the cache insertion it fed) is kept — the work is not wasted,
     the entry serves future hits — but a request past its deadline is
     refused rather than executed. One clock read for the whole round
     keeps the refusal set a function of (requests, round start). *)
  let exec_now = t.now () in
  (* execute in parallel (results are position-deterministic), then
     assemble responses in request order *)
  let responses =
    run_tasks t
      (List.map
         (function
           | `Expired -> fun () -> expired_response ()
           | `Resolved (key, entry, deadline, status, plan_ms) -> (
               fun () ->
                 match entry.verdict with
                 | Denied { message; _ } ->
                     { outcome = Rejected message; status; key;
                       planned = None; plan_ms; exec_ms = 0.0 }
                 | Planned r -> (
                     match deadline with
                     | Some d when exec_now > d ->
                         { outcome =
                             Expired "between plan and exec";
                           status; key; planned = Some r; plan_ms;
                           exec_ms = 0.0 }
                     | _ ->
                         let t0 = now_ms () in
                         let table = execute t r in
                         { outcome = Table table; status; key;
                           planned = Some r; plan_ms;
                           exec_ms = now_ms () -. t0 })))
         resolved)
  in
  (* accounting (coordinator only, deterministic) *)
  let after = Lru.stats t.cache in
  Obs.incr ~by:(after.Lru.hits - before.Lru.hits) "serve.cache.hits";
  Obs.incr ~by:(after.Lru.misses - before.Lru.misses) "serve.cache.misses";
  Obs.incr ~by:(after.Lru.evictions - before.Lru.evictions)
    "serve.cache.evictions";
  List.iter
    (fun r ->
      t.queries <- t.queries + 1;
      Obs.incr "serve.queries";
      (match r.outcome with
      | Rejected _ ->
          t.rejections <- t.rejections + 1;
          Obs.incr "serve.rejections"
      | Expired _ ->
          t.expired <- t.expired + 1;
          Obs.incr "serve.expired"
      | Table _ -> ());
      t.plan_ms_total <- t.plan_ms_total +. r.plan_ms;
      t.exec_ms_total <- t.exec_ms_total +. r.exec_ms;
      Obs.record "serve.plan_ms" r.plan_ms;
      Obs.record "serve.exec_ms" r.exec_ms;
      Obs.record "serve.query_ms" (r.plan_ms +. r.exec_ms))
    responses;
  responses

let rec admit t = function
  | [] -> []
  | requests ->
      let rec take n acc = function
        | rest when n = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | q :: rest -> take (n - 1) (q :: acc) rest
      in
      let round, rest = take t.max_batch [] requests in
      let served = serve_round t round in
      served @ admit t rest

let submit_batch_requests t requests = admit t requests
let submit_batch t queries = admit t (List.map request queries)

let submit_request t req =
  match serve_round t [ req ] with
  | [ r ] -> r
  | _ -> assert false

let submit t query = submit_request t (request query)
let submit_sql t sql = submit t (parse t sql)

type stats = {
  queries : int;
  rejections : int;
  expired : int;
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  invalidated : int;
  reverified : int;
  retained : int;
  entries : int;
  capacity : int;
  plan_ms : float;
  exec_ms : float;
}

let stats t =
  let c = Lru.stats t.cache in
  { queries = t.queries; rejections = t.rejections; expired = t.expired;
    hits = c.Lru.hits;
    misses = c.Lru.misses; insertions = c.Lru.insertions;
    evictions = c.Lru.evictions; invalidated = t.invalidated;
    reverified = t.reverified; retained = t.retained;
    entries = Lru.length t.cache; capacity = Lru.capacity t.cache;
    plan_ms = t.plan_ms_total; exec_ms = t.exec_ms_total }

let hit_rate s =
  let looked = s.hits + s.misses in
  if looked = 0 then 0.0 else float_of_int s.hits /. float_of_int looked

let cache_keys t = Lru.keys t.cache

let render_stats s =
  Printf.sprintf
    "%d queries (%d rejected, %d expired): %d hits, %d misses (%.1f%% hit \
     rate), %d/%d entries, %d evictions; %d invalidated, %d reverified, \
     %d retained; plan %.2f ms, exec %.2f ms"
    s.queries s.rejections s.expired s.hits s.misses
    (100.0 *. hit_rate s)
    s.entries s.capacity s.evictions s.invalidated s.reverified s.retained
    s.plan_ms s.exec_ms

let stats_json s =
  Json.Obj
    [ ("queries", Json.Int s.queries);
      ("rejections", Json.Int s.rejections);
      ("expired", Json.Int s.expired);
      ("hits", Json.Int s.hits);
      ("misses", Json.Int s.misses);
      ("hit_rate", Json.Float (hit_rate s));
      ("insertions", Json.Int s.insertions);
      ("evictions", Json.Int s.evictions);
      ("invalidated", Json.Int s.invalidated);
      ("reverified", Json.Int s.reverified);
      ("retained", Json.Int s.retained);
      ("entries", Json.Int s.entries);
      ("capacity", Json.Int s.capacity);
      ("plan_ms", Json.Float s.plan_ms);
      ("exec_ms", Json.Float s.exec_ms) ]
