open Relalg

(* Cached verdicts: a verified plan, or the policy's rejection of the
   query. Both are deterministic in (query, environment), so both are
   sound to replay until the environment changes — and, with the
   dependency analysis below, across policy changes that provably do
   not touch what the verdict consulted. *)
type denial_kind = No_candidate | User_denied | Verify_failed

type verdict =
  | Planned of Planner.Optimizer.result
  | Denied of { message : string; kind : denial_kind }

(* What the cache stores per key. [deps] is the entry's authorization
   dependency set (empty for denials — see [set_policy]); [qfp] the
   structural query fingerprint, kept so surviving entries can be
   rekeyed under a new environment fingerprint without the query;
   [env] the environment the verdict was computed under, so entries
   stranded by a non-policy rotation are never migrated into the
   current epoch by a later policy delta; [tenant] the id of the
   tenant the verdict belongs to — redundant with the tenant component
   inside [env] (keys of different tenants cannot collide), carried
   explicitly so a hit can assert it and fail closed if the key-space
   argument were ever broken. *)
type cached = {
  verdict : verdict;
  deps : Analysis.Fact.Set.t;
  qfp : string;
  env : string;
  tenant : string;
  exec_plan : Plan.t option;
      (* the hash-consed (DAG-interned) executable form of the
         extended plan, when sharing is on: structurally identical to
         [extended.plan], with subtrees shared across every cached
         plan of the service. Execution runs this form so the sub-plan
         result cache and the batch grouping see one physical node per
         distinct shape. *)
}

(* A cached sub-plan result: one subtree's output table, reusable by
   any plan occurrence whose subcache key matches. The key covers
   everything the bytes depend on — subtree structure, preorder
   position when ciphertext is produced inside (encryption randomness
   is position-derived), the key clusters and schemes over the
   subtree's encrypted attributes, the executor assignment, and the
   environment fingerprint — so equal key implies equal bytes by
   construction. [sub_deps] is the subtree's authorization dependency
   set (Analysis.Deps.of_subplan), consulted by incremental policy
   migration exactly like the plan cache's [deps]. [sub_tenant]
   mirrors the plan cache's [tenant]: the worker-side lookup checks it
   and refuses a foreign entry rather than serving it. *)
type subentry = {
  table : Engine.Table.t;
  sub_deps : Analysis.Fact.Set.t;
  sub_env : string;
  sub_tenant : string;
  base_key : string;  (* key minus the environment component *)
  skey : string;  (* structural fingerprint: the shard key *)
}

type invalidation = Rotate | Incremental

type t = {
  tenants : Tenancy.registry;
  invalidation : invalidation;
  base : Planner.Estimate.base_stats;
  udfs : (string * Engine.Exec.udf) list;
  tables : (string * Engine.Table.t) list;
  seed : int64;
  pool : Par.pool option;
  max_batch : int;
  now : unit -> float;  (* deadline clock, injectable for tests *)
  cache : cached Shard_lru.t;
  sharing : bool;
  dag : Planner.Dag.t;
  subcache : subentry Shard_lru.t;
  derive_memo : Verify.Derive.memo;
  mutable queries : int;
  mutable rejections : int;
  mutable expired : int;
  mutable invalidated : int;
  mutable reverified : int;
  mutable retained : int;
  mutable subplan_hits : int;
  mutable subplan_stores : int;
  mutable subplan_invalidated : int;
  mutable shared_execs : int;
  mutable cross_tenant_hits : int;
  mutable plan_ms_total : float;
  mutable exec_ms_total : float;
}

type status = Hit | Miss

type outcome =
  | Table of Engine.Table.t
  | Rejected of string
  | Expired of string

type response = {
  outcome : outcome;
  status : status;
  key : string;
  tenant : string;
  planned : Planner.Optimizer.result option;
  plan_ms : float;
  exec_ms : float;
}

type request = { query : Plan.t; deadline : float option; tenant : string }

let request ?deadline ?(tenant = Tenancy.default_id) query =
  { query; deadline; tenant }

let create ?(cache_capacity = 128) ?(max_batch = 32) ?pool ?config ?pricing
    ?network ?(base = fun _ -> None) ?deliver_to ?max_latency ?(udfs = [])
    ?(seed = 42L) ?(invalidation = Incremental) ?(sharing = true)
    ?(subcache_capacity = 256) ?(shards = 1) ?(now = Unix.gettimeofday)
    ~policy ~subjects ~tables () =
  if max_batch < 1 then
    invalid_arg (Printf.sprintf "Service.create: max_batch %d < 1" max_batch);
  let tenants = Tenancy.registry () in
  Tenancy.add tenants
    (Tenancy.make ~id:Tenancy.default_id ?config ?pricing ?network
       ?deliver_to ?max_latency ~policy ~subjects ());
  let dag = Planner.Dag.create () in
  { tenants; invalidation; base; udfs; tables; seed; pool; max_batch; now;
    cache = Shard_lru.create ~capacity:cache_capacity ~shards; sharing; dag;
    subcache = Shard_lru.create ~capacity:subcache_capacity ~shards;
    derive_memo = Verify.Derive.memo ~fp:(Planner.Dag.fingerprint dag) ();
    queries = 0; rejections = 0; expired = 0; invalidated = 0;
    reverified = 0; retained = 0; subplan_hits = 0; subplan_stores = 0;
    subplan_invalidated = 0; shared_execs = 0; cross_tenant_hits = 0;
    plan_ms_total = 0.0; exec_ms_total = 0.0 }

let tenant_exn t id =
  match Tenancy.find t.tenants id with
  | Some tn -> tn
  | None -> invalid_arg (Printf.sprintf "Service: unknown tenant %S" id)

let default_tenant t = tenant_exn t Tenancy.default_id

let add_tenant t ~id ?policy ?subjects ?config ?pricing ?network ?deliver_to
    ?max_latency () =
  let d = default_tenant t in
  let pick o f = match o with Some v -> v | None -> f d in
  Tenancy.add t.tenants
    (Tenancy.make ~id
       ~config:(pick config (fun d -> d.Tenancy.config))
       ~pricing:(pick pricing (fun d -> d.Tenancy.pricing))
       ~network:(pick network (fun d -> d.Tenancy.network))
       ?deliver_to:
         (match deliver_to with
         | Some _ as x -> x
         | None -> d.Tenancy.deliver_to)
       ?max_latency:
         (match max_latency with
         | Some _ as x -> x
         | None -> d.Tenancy.max_latency)
       ~policy:(pick policy (fun d -> d.Tenancy.policy))
       ~subjects:(pick subjects (fun d -> d.Tenancy.subjects))
       ());
  Obs.incr "serve.tenants"

let tenant_ids t = Tenancy.ids t.tenants

let tenant_stats t =
  let acc = ref [] in
  Tenancy.iter (fun tn -> acc := (tn.Tenancy.id, Tenancy.stats tn) :: !acc)
    t.tenants;
  List.rev !acc

(* ---- sub-plan cache keys ----

   A subtree occurrence's key must cover every input its result bytes
   are a function of:

   - structure: the collision-free structural fingerprint;
   - position: ciphertext bytes derive randomness from preorder
     positions, so any subtree producing or carrying ciphertext is
     keyed by its root position (crypto-free subtrees — no
     Encrypt/Decrypt, no encrypted-at-rest base — are
     position-independent and share across positions);
   - key clusters: each encrypted attribute's cluster id and scheme
     (cluster keys derive from the keyring by cluster id; clustering
     is a whole-query property, so the same subtree under different
     clusterings yields different bytes);
   - assignment: the executors of the subtree's nodes, conservatively
     — execution is locally simulated so bytes do not depend on it,
     but the dependency facts stored for invalidation do;
   - environment: the leakage gate. Structurally equal subtrees
     planned under different policies, subject populations, recipients
     or configs — or for different {e tenants}, whose ids are a field
     of the environment fingerprint — must never observe each other's
     results (the paper's series-of-queries rule); the environment
     fingerprint separates them even though their bytes would
     coincide. *)

let kfield s = string_of_int (String.length s) ^ ":" ^ s
let subcache_key ~env base = "mpq-subplan-v1|" ^ base ^ kfield env

let subtree_crypto_attrs plan =
  Plan.fold
    (fun acc n ->
      match Plan.node n with
      | Plan.Encrypt (a, _) | Plan.Decrypt (a, _) -> Attr.Set.union a acc
      | Plan.Base s -> Attr.Set.union (Schema.stored_encrypted s) acc
      | _ -> acc)
    Attr.Set.empty plan

(* Executor name per preorder position of the extended plan — the
   bridge between the DAG-interned executable plan (whose node ids are
   fresh) and the id-keyed assignment: the two are structurally
   identical, so position [p] in one is position [p] in the other. *)
let subjects_by_pos (extended : Authz.Extend.t) =
  let positions = Plan.preorder_positions extended.Authz.Extend.plan in
  let arr = Array.make (Plan.size extended.Authz.Extend.plan) "" in
  Plan.iter
    (fun node ->
      match Hashtbl.find_opt positions (Plan.id node) with
      | Some p ->
          arr.(p) <-
            (match
               Authz.Imap.find_opt (Plan.id node)
                 extended.Authz.Extend.assignment
             with
            | Some s -> Authz.Subject.name s
            | None -> "")
      | None -> ())
    extended.Authz.Extend.plan;
  arr

(* Returns the base key (everything but the environment) plus the
   subtree's structural fingerprint — the latter doubles as the shard
   key: it is the one component rekeying never rewrites, so an entry's
   shard is fixed for its lifetime. *)
let base_key_of t ~clusters ~subjects ~pos n =
  let fp = Planner.Dag.fingerprint t.dag n in
  let buf = Buffer.create 128 in
  Buffer.add_string buf (kfield fp);
  let crypto_free =
    match Planner.Dag.find t.dag n with
    | Some i -> i.Planner.Dag.crypto_free
    | None -> Planner.Dag.crypto_free n
  in
  Buffer.add_string buf
    (kfield (if crypto_free then "" else string_of_int pos));
  Attr.Set.iter
    (fun a ->
      Buffer.add_string buf (kfield (Attr.name a));
      match Authz.Plan_keys.cluster_of_attr clusters a with
      | Some c ->
          Buffer.add_string buf (kfield c.Authz.Plan_keys.id);
          Buffer.add_string buf
            (kfield (Mpq_crypto.Scheme.name c.Authz.Plan_keys.scheme))
      | None -> Buffer.add_string buf (kfield ""))
    (subtree_crypto_attrs n);
  let sz = Plan.size n in
  for p = pos to pos + sz - 1 do
    Buffer.add_string buf (kfield subjects.(p))
  done;
  (Buffer.contents buf, fp)

(* The positions at which an execution of [exec_plan] may consult or
   feed the sub-plan cache: the root (whole-result memoization — a
   cache-hit query's re-execution becomes one lookup) plus each
   {e maximal} shared subtree (admitting nested shared nodes under an
   already-admitted one would store the same bytes twice; a query
   where only the inner node is shared admits it as its own maximal
   node). Computed on the coordinator — DAG fingerprints and
   occurrence counts are not synchronized. *)
let memo_positions t (tn : Tenancy.t) (r : Planner.Optimizer.result)
    exec_plan =
  let subjects = subjects_by_pos r.Planner.Optimizer.extended in
  let clusters = r.Planner.Optimizer.clusters in
  let keys = Hashtbl.create 16 in
  let rec walk ~search pos n =
    let shared = Planner.Dag.occurrences t.dag n > 1 in
    if pos = 0 || (search && shared) then begin
      let base, skey = base_key_of t ~clusters ~subjects ~pos n in
      Hashtbl.replace keys pos
        (subcache_key ~env:tn.Tenancy.env base, base, Plan.size n, skey)
    end;
    List.iter
      (fun (c, p) -> walk ~search:(not shared) p c)
      (Plan.child_positions n pos)
  in
  walk ~search:true 0 exec_plan;
  keys

type subcache_event =
  | Sub_hit of { pos : int; key : string; skey : string }
  | Sub_foreign of { pos : int; key : string }
  | Sub_store of {
      pos : int;
      key : string;
      base : string;
      size : int;
      skey : string;
      table : Engine.Table.t;
    }

let event_pos = function
  | Sub_hit e -> e.pos
  | Sub_foreign e -> e.pos
  | Sub_store e -> e.pos

(* Worker-domain-safe memo closures over the sharded subcache: lookups
   are per-shard-locked [Shard_lru.peek]s (no recency, no global
   state), every observation is buffered under a mutex, and the
   coordinator replays the buffer — sorted by position, so
   sibling-parallel execution order cannot leak into the replay —
   after the exec phase. The subcache therefore evolves identically at
   any job count and any shard count, like the plan cache.

   The tenant check on a hit is the fail-closed armor over the
   key-space isolation argument: the environment component inside the
   key already makes a foreign entry unreachable, so the check can
   only fire if key construction were broken — in which case the
   result is refused, the event is counted (the bench and the
   isolation property assert the counter stays 0), and the subtree is
   recomputed. *)
let make_memo t (tn : Tenancy.t) keys =
  let mutex = Mutex.create () in
  let events = ref [] in
  let record e =
    Mutex.lock mutex;
    events := e :: !events;
    Mutex.unlock mutex
  in
  let memo =
    { Engine.Exec.lookup =
        (fun ~pos _plan ->
          match Hashtbl.find_opt keys pos with
          | None -> None
          | Some (key, _, _, skey) -> (
              match Shard_lru.peek t.subcache ~skey key with
              | Some (se : subentry)
                when not (String.equal se.sub_tenant tn.Tenancy.id) ->
                  record (Sub_foreign { pos; key });
                  None
              | Some se ->
                  record (Sub_hit { pos; key; skey });
                  Some se.table
              | None -> None));
      store =
        (fun ~pos _plan table ->
          match Hashtbl.find_opt keys pos with
          | None -> ()
          | Some (key, base, size, skey) ->
              record (Sub_store { pos; key; base; size; skey; table }));
    }
  in
  (memo, events)

(* Coordinator-side replay of one execution's buffered events, in
   position order: hits refresh recency and count; stores compute the
   subtree's dependency facts (against the extended tree's matching
   position range) and insert. A key two same-round executions both
   computed is stored once — the bytes are identical by key
   construction. *)
let replay_subcache t (tn : Tenancy.t) (r : Planner.Optimizer.result) events =
  let evs =
    List.sort (fun a b -> compare (event_pos a) (event_pos b)) !events
  in
  List.iter
    (function
      | Sub_hit { key; skey; _ } ->
          ignore (Shard_lru.find t.subcache ~skey key);
          t.subplan_hits <- t.subplan_hits + 1;
          Obs.incr "serve.subcache.hits"
      | Sub_foreign _ ->
          t.cross_tenant_hits <- t.cross_tenant_hits + 1;
          Obs.incr "serve.cross_tenant_hits"
      | Sub_store { pos; key; base; size; skey; table } ->
          if not (Shard_lru.mem t.subcache ~skey key) then begin
            let sub_deps =
              Analysis.Deps.of_subplan ?deliver_to:tn.Tenancy.deliver_to
                ~derive_memo:t.derive_memo
                ~extended:r.Planner.Optimizer.extended
                ~clusters:r.Planner.Optimizer.clusters ~range:(pos, size) ()
            in
            t.subplan_stores <- t.subplan_stores + 1;
            Obs.incr "serve.subcache.stores";
            Shard_lru.add t.subcache ~skey key
              { table; sub_deps; sub_env = tn.Tenancy.env;
                sub_tenant = tn.Tenancy.id; base_key = base; skey }
          end)
    evs

(* Incremental invalidation (policy changes only): diff the old and new
   policies as fact sets and migrate each same-epoch entry {e of the
   mutated tenant} under the protocol the dependency analysis
   justifies (see lib/analysis):

   - a removed fact in the entry's dependency set may have been
     load-bearing for its verification: drop;
   - added facts cannot break Def. 4.1 checks (grants are monotone),
     but can make the cached plan cost-stale; the entry is kept after
     one incremental verifier pass re-certifies it — no replanning;
   - a delta disjoint from the dependency set provably cannot change
     any verdict: the entry is rekeyed under the new environment
     fingerprint, recency intact.

   Entries belonging to other tenants pass through untouched — their
   environment fingerprints did not rotate, their keys stay reachable,
   and their recency positions are preserved (the per-tenant
   invalidation test asserts exactly this). Denials carry no plan to
   compute dependencies from, so they use the monotonicity argument
   alone: planner denials (no candidate, user gate) cannot be fixed by
   revoking more, so they survive revoke-only deltas and are dropped
   on any grant; verifier denials are dropped on any view change
   (re-planning under the new policy may choose a different extension
   entirely). *)
let migrate t (tn : Tenancy.t) ~old_policy ~old_env =
  let mine (c : cached) =
    String.equal c.tenant tn.Tenancy.id && String.equal c.env old_env
  in
  let dep_subjects = ref Authz.Subject.Set.empty in
  let _ =
    Shard_lru.remap t.cache (fun key c ->
        if mine c then
          dep_subjects :=
            Authz.Subject.Set.union (Analysis.Deps.subjects_of c.deps)
              !dep_subjects;
        Some (key, c))
  in
  let subjects =
    tn.Tenancy.subjects
    @ Authz.Subject.Set.elements !dep_subjects
    @ (match tn.Tenancy.deliver_to with Some u -> [ u ] | None -> [])
  in
  match
    Analysis.Delta.diff ~subjects ~old_policy ~new_policy:tn.Tenancy.policy ()
  with
  | `Incompatible ->
      (* schema change: old entries are not comparable fact-by-fact.
         The fingerprint rotation already happened, so they are
         unreachable; leave them to age out. *)
      Obs.incr "serve.invalidation.incompatible"
  | `Delta d ->
      let any_grant = not (Analysis.Fact.Set.is_empty d.Analysis.Delta.added) in
      let any_change = not (Analysis.Delta.is_empty d) in
      let reverified = ref 0 and retained = ref 0 in
      let rekey c =
        Some
          ( Planner.Optimizer.cache_key_of ~env:tn.Tenancy.env c.qfp,
            { c with env = tn.Tenancy.env } )
      in
      let dropped =
        Shard_lru.remap t.cache (fun key c ->
            if not (mine c) then
              (* another tenant's entry, or one stranded by an earlier
                 non-policy rotation: not ours to migrate *)
              Some (key, c)
            else
              let keep c =
                incr retained;
                rekey c
              in
              match c.verdict with
              | Denied { kind = Verify_failed; _ } ->
                  if any_change then None else keep c
              | Denied _ -> if any_grant then None else keep c
              | Planned r ->
                  if
                    not
                      (Analysis.Fact.Set.is_empty
                         (Analysis.Fact.Set.inter d.Analysis.Delta.removed
                            c.deps))
                  then None
                  else if
                    Analysis.Fact.Set.is_empty
                      (Analysis.Fact.Set.inter d.Analysis.Delta.added c.deps)
                  then keep c
                  else begin
                    incr reverified;
                    let diags =
                      Verify.Verifier.run
                        { Verify.Verifier.policy = tn.Tenancy.policy;
                          config = r.Planner.Optimizer.config;
                          extended = r.Planner.Optimizer.extended;
                          clusters = r.Planner.Optimizer.clusters;
                          requests = r.Planner.Optimizer.requests }
                    in
                    if Verify.Diag.has_errors diags then None else keep c
                  end)
      in
      t.invalidated <- t.invalidated + dropped;
      tn.Tenancy.invalidated <- tn.Tenancy.invalidated + dropped;
      t.reverified <- t.reverified + !reverified;
      t.retained <- t.retained + !retained;
      Obs.incr ~by:dropped "serve.invalidation.dropped";
      Obs.incr ~by:!reverified "serve.invalidation.reverified";
      Obs.incr ~by:!retained "serve.invalidation.retained";
      (* Sub-plan results migrate under a simpler protocol than whole
         plans: result bytes are policy-independent (the key fixes
         them), so there is nothing to re-verify — the dependency set
         gates only whether reusing the result remains {e authorized}.
         A removed fact the subtree's certification consumed drops the
         entry for every consumer at once (shared nodes invalidate
         once, not per query); grants are monotone, so any other delta
         rekeys the entry under the new environment, recency intact.
         Again scoped to the mutated tenant: another tenant's entries
         keep their keys and recency. *)
      let sub_dropped =
        Shard_lru.remap t.subcache (fun key se ->
            if
              not
                (String.equal se.sub_tenant tn.Tenancy.id
                && String.equal se.sub_env old_env)
            then Some (key, se)
            else if
              not
                (Analysis.Fact.Set.is_empty
                   (Analysis.Fact.Set.inter d.Analysis.Delta.removed
                      se.sub_deps))
            then None
            else
              Some
                ( subcache_key ~env:tn.Tenancy.env se.base_key,
                  { se with sub_env = tn.Tenancy.env } ))
      in
      t.subplan_invalidated <- t.subplan_invalidated + sub_dropped;
      tn.Tenancy.invalidated <- tn.Tenancy.invalidated + sub_dropped;
      Obs.incr ~by:sub_dropped "serve.subcache.invalidated"

let set_policy ?subjects ?(tenant = Tenancy.default_id) t policy =
  let tn = tenant_exn t tenant in
  let old_policy = tn.Tenancy.policy and old_env = tn.Tenancy.env in
  tn.Tenancy.policy <- policy;
  (match subjects with Some s -> tn.Tenancy.subjects <- s | None -> ());
  Tenancy.rotate tn;
  match t.invalidation with
  | Rotate -> ()
  | Incremental ->
      (* a subject-population swap changes which views matter in ways
         the per-entry dependency sets cannot bound: fall back to the
         rotation the fingerprint change already performed *)
      if subjects = None then migrate t tn ~old_policy ~old_env

let set_config ?(tenant = Tenancy.default_id) t config =
  let tn = tenant_exn t tenant in
  tn.Tenancy.config <- config;
  Tenancy.rotate tn

let set_pricing ?(tenant = Tenancy.default_id) t pricing =
  let tn = tenant_exn t tenant in
  tn.Tenancy.pricing <- pricing;
  Tenancy.rotate tn

let set_network ?(tenant = Tenancy.default_id) t network =
  let tn = tenant_exn t tenant in
  tn.Tenancy.network <- network;
  Tenancy.rotate tn

let invalidate t =
  Shard_lru.clear t.cache;
  Shard_lru.clear t.subcache;
  Planner.Dag.clear t.dag;
  Verify.Derive.memo_clear t.derive_memo

let environment ?(tenant = Tenancy.default_id) t =
  (tenant_exn t tenant).Tenancy.env

let parse ?(tenant = Tenancy.default_id) t sql =
  let tn = tenant_exn t tenant in
  let catalog = Authz.Authorization.schemas tn.Tenancy.policy in
  let plan = Mpq_sql.Sql_plan.parse_and_plan ~catalog sql in
  Planner.Join_order.reorder ~base:t.base (Planner.Rewrite.normalize plan)

let now_ms () = Unix.gettimeofday () *. 1000.0

(* Plan + verify one cold query. Exactly one verifier pass guards every
   insertion: the optimizer's own self-check when it is enabled
   (the default), an explicit pass here when a caller has turned the
   global gate off — the cache's "verified entries only" contract must
   not depend on ambient flag state. *)
let plan_once t (tn : Tenancy.t) ~qfp query =
  Obs.with_span "serve.plan" @@ fun () ->
  let verified_by_planner = !Planner.Optimizer.self_check in
  let denied kind message =
    { verdict = Denied { message; kind }; deps = Analysis.Fact.Set.empty;
      qfp; env = tn.Tenancy.env; tenant = tn.Tenancy.id; exec_plan = None }
  in
  match
    let r =
      Planner.Optimizer.plan ~policy:tn.Tenancy.policy
        ~subjects:tn.Tenancy.subjects ~config:tn.Tenancy.config
        ~pricing:tn.Tenancy.pricing ~network:tn.Tenancy.network ~base:t.base
        ?deliver_to:tn.Tenancy.deliver_to ?max_latency:tn.Tenancy.max_latency
        query
    in
    if not verified_by_planner then begin
      let diags =
        Verify.Verifier.run
          { Verify.Verifier.policy = tn.Tenancy.policy;
            config = r.Planner.Optimizer.config;
            extended = r.Planner.Optimizer.extended;
            clusters = r.Planner.Optimizer.clusters;
            requests = r.Planner.Optimizer.requests }
      in
      if Verify.Diag.has_errors diags then
        raise
          (Planner.Optimizer.Verification_failed
             ("serve: cold plan failed verification:\n"
             ^ Verify.Diag.render (Verify.Diag.errors diags)))
    end;
    r
  with
  | r ->
      (* deps and the DAG interning happen in [finalize], on the
         coordinator: both thread shared un-synchronized state (the
         derivation memo, the DAG store) and this function runs in the
         parallel plan phase *)
      { verdict = Planned r; deps = Analysis.Fact.Set.empty; qfp;
        env = tn.Tenancy.env; tenant = tn.Tenancy.id; exec_plan = None }
  | exception Planner.Optimizer.No_candidate msg -> denied No_candidate msg
  | exception Planner.Optimizer.User_not_authorized msg ->
      denied User_denied msg
  | exception Planner.Optimizer.Verification_failed msg ->
      (* fail closed: a plan the verifier will not certify is never
         served (or cached as servable). The verdict — including the
         full diagnostic rendering — is deterministic in
         (query, environment): diagnostics cite canonical preorder
         positions, not allocation-counter node ids, so the complete
         message replays byte-identically from cache. *)
      denied Verify_failed msg

(* Coordinator-side completion of a freshly planned entry, at cache
   insertion: compute the dependency facts (sharing profile
   derivations through the service memo) and intern the extended plan
   into the DAG so its subtrees join the shared-node store. *)
let finalize t (tn : Tenancy.t) query entry =
  match entry.verdict with
  | Denied _ -> entry
  | Planned r ->
      let deps =
        Analysis.Deps.of_extended ?deliver_to:tn.Tenancy.deliver_to
          ~original:query ~derive_memo:t.derive_memo
          ~extended:r.Planner.Optimizer.extended
          ~clusters:r.Planner.Optimizer.clusters ()
      in
      let exec_plan =
        if t.sharing then
          Some
            (Planner.Dag.intern t.dag
               r.Planner.Optimizer.extended.Authz.Extend.plan)
        else None
      in
      { entry with deps; exec_plan }

let execute ?memo t (r : Planner.Optimizer.result) plan =
  Obs.with_span "serve.exec" @@ fun () ->
  (* fresh keyring per execution: ciphertext randomness derives from
     (node preorder position, row index), so equal seeds reproduce
     equal bytes — on the DAG-interned plan exactly as on the original
     tree, since the executor threads positions per occurrence *)
  let keyring = Mpq_crypto.Keyring.create ~seed:t.seed () in
  let crypto = Engine.Enc_exec.make keyring r.Planner.Optimizer.clusters in
  let ctx = Engine.Exec.context ~udfs:t.udfs ~crypto t.tables in
  Engine.Exec.run ?pool:t.pool ?memo ctx plan

let run_tasks t thunks =
  match (t.pool, thunks) with
  | Some pool, _ :: _ :: _ -> Par.run_all pool thunks
  | _ -> List.map (fun f -> f ()) thunks

(* One admission-bounded round of the three-phase protocol. Requests
   whose deadline has already passed when the round starts are refused
   up front — no fingerprinting, no cache probe, no planning: a refusal
   must never disturb the cache's observable evolution. A request
   naming an unregistered tenant is likewise refused before the cache
   is touched: tenant ids come off the wire, and an unknown id must
   not be able to perturb anything observable. *)
let serve_round t requests =
  Obs.with_span "serve.batch" @@ fun () ->
  let before = Shard_lru.stats t.cache in
  let admit_now = t.now () in
  (* phase 1 — probe: resolve every request's tenant, fingerprint the
     live ones, pick the distinct missing keys. Pure: no cache
     mutation, no recency refresh. *)
  let keyed =
    List.map
      (fun { query = q; deadline; tenant } ->
        match Tenancy.find t.tenants tenant with
        | None -> `Unknown tenant
        | Some tn -> (
            match deadline with
            | Some d when admit_now > d -> `Expired tn
            | _ ->
                let t0 = now_ms () in
                let qfp = Planner.Fingerprint.of_plan q in
                let key =
                  Planner.Optimizer.cache_key_of ~env:tn.Tenancy.env qfp
                in
                `Live (tn, q, qfp, key, deadline, now_ms () -. t0)))
      requests
  in
  let to_plan =
    List.rev
      (List.fold_left
         (fun acc -> function
           | `Unknown _ | `Expired _ -> acc
           | `Live (tn, q, qfp, key, _, _) ->
               if Shard_lru.mem t.cache ~skey:qfp key
                  || List.mem_assoc key acc
               then acc
               else (key, (tn, q, qfp)) :: acc)
         [] keyed)
  in
  (* phase 2 — plan each distinct missing key in parallel. Planning is
     pure (the plan-node id counter is atomic), so tasks only race for
     CPU; planner rejections become cacheable Denied entries, anything
     else propagates. *)
  let planned =
    run_tasks t
      (List.map
         (fun (key, (tn, q, qfp)) () ->
           let t0 = now_ms () in
           let entry = plan_once t tn ~qfp q in
           (key, (entry, now_ms () -. t0)))
         to_plan)
  in
  (* phase 3 — replay the cache protocol sequentially in request
     order: the only phase that mutates the cache, so its evolution is
     independent of the job count. A key that repeats within the batch
     misses once and hits from then on, exactly as in serial serving.
     A hit is additionally required to belong to the requesting tenant
     — impossible to violate while keys embed the tenant id, counted
     and refused (treated as a miss, replanned) if it ever happened. *)
  let resolved =
    List.map
      (function
        | `Unknown tenant -> `Unknown tenant
        | `Expired tn -> `Expired tn
        | `Live (tn, q, qfp, key, deadline, key_ms) -> (
            let t0 = now_ms () in
            let hit =
              match Shard_lru.find t.cache ~skey:qfp key with
              | Some entry
                when not (String.equal entry.tenant tn.Tenancy.id) ->
                  t.cross_tenant_hits <- t.cross_tenant_hits + 1;
                  Obs.incr "serve.cross_tenant_hits";
                  None
              | found -> found
            in
            match hit with
            | Some entry ->
                tn.Tenancy.hits <- tn.Tenancy.hits + 1;
                `Resolved
                  (tn, key, entry, deadline, Hit, key_ms +. (now_ms () -. t0))
            | None ->
                tn.Tenancy.misses <- tn.Tenancy.misses + 1;
                let entry, plan_ms =
                  match List.assoc_opt key planned with
                  | Some e -> e
                  | None ->
                      (* the probe saw this key resident, but an earlier
                         insertion in this very round evicted it. Replan on
                         the coordinator: a function of request order and
                         cache state only, so still job-count independent. *)
                      let p0 = now_ms () in
                      let entry = plan_once t tn ~qfp q in
                      (entry, now_ms () -. p0)
                in
                (* dependency facts + DAG interning: coordinator-only
                   state, so it happens here rather than in the
                   parallel plan phase *)
                let entry = finalize t tn q entry in
                Shard_lru.add t.cache ~skey:qfp key entry;
                `Resolved
                  (tn, key, entry, deadline, Miss,
                   key_ms +. (now_ms () -. t0) +. plan_ms)))
      keyed
  in
  (* the second deadline checkpoint, between plan and exec: planning
     (and the cache insertion it fed) is kept — the work is not wasted,
     the entry serves future hits — but a request past its deadline is
     refused rather than executed. One clock read for the whole round
     keeps the refusal set a function of (requests, round start). *)
  let exec_now = t.now () in
  (* classify executions on the coordinator: batch-level work sharing
     groups live planned requests by cache key, so each distinct entry
     executes once per round and later occurrences alias the
     (immutable) result table — only ever within one tenant, because
     keys of different tenants cannot be equal. With sharing on,
     executions run the DAG-interned plan under the sub-plan memo
     (frozen-snapshot lookups, buffered stores). Classification order
     is request order, so the representative choice — and with it
     every observable effect — is job-count independent. *)
  let rep_seen = Hashtbl.create 8 in
  let classified =
    List.map
      (function
        | `Unknown tenant -> `Unknown tenant
        | `Expired tn -> `Expired tn
        | `Resolved (tn, key, entry, deadline, status, plan_ms) -> (
            match entry.verdict with
            | Denied { message; _ } ->
                `Denied (tn, key, message, status, plan_ms)
            | Planned r -> (
                match deadline with
                | Some d when exec_now > d ->
                    `Late (tn, key, r, status, plan_ms)
                | _ ->
                    if t.sharing && Hashtbl.mem rep_seen key then
                      `Alias (tn, key, r, status, plan_ms)
                    else begin
                      Hashtbl.replace rep_seen key ();
                      let memo =
                        match (t.sharing, entry.exec_plan) with
                        | true, Some ep ->
                            let keys = memo_positions t tn r ep in
                            let memo, events = make_memo t tn keys in
                            Some (ep, memo, events)
                        | _ -> None
                      in
                      `Run (tn, key, r, status, plan_ms, memo)
                    end)))
      resolved
  in
  (* execute representatives in parallel (results are
     position-deterministic) *)
  let executed =
    run_tasks t
      (List.filter_map
         (function
           | `Run (_, key, r, _, _, memo) ->
               Some
                 (fun () ->
                   let t0 = now_ms () in
                   let table =
                     match memo with
                     | Some (ep, m, _) -> execute ~memo:m t r ep
                     | None ->
                         execute t r
                           r.Planner.Optimizer.extended.Authz.Extend.plan
                   in
                   (key, (table, now_ms () -. t0)))
           | _ -> None)
         classified)
  in
  (* replay the buffered sub-plan cache events sequentially, in
     request order (and position order within one execution): the only
     subcache mutations, so its evolution matches any job count *)
  List.iter
    (function
      | `Run (tn, _, r, _, _, Some (_, _, events)) ->
          replay_subcache t tn r events
      | _ -> ())
    classified;
  (* assemble responses in request order, each tagged with the tenant
     it was served for (or the unknown id it named) *)
  let responses =
    List.map
      (function
        | `Unknown tenant ->
            ( { outcome = Rejected (Printf.sprintf "unknown tenant %S" tenant);
                status = Miss; key = ""; tenant; planned = None;
                plan_ms = 0.0; exec_ms = 0.0 },
              None )
        | `Expired tn ->
            ( { outcome = Expired "at admission"; status = Miss; key = "";
                tenant = tn.Tenancy.id; planned = None; plan_ms = 0.0;
                exec_ms = 0.0 },
              Some tn )
        | `Denied (tn, key, message, status, plan_ms) ->
            ( { outcome = Rejected message; status; key;
                tenant = tn.Tenancy.id; planned = None; plan_ms;
                exec_ms = 0.0 },
              Some tn )
        | `Late (tn, key, r, status, plan_ms) ->
            ( { outcome = Expired "between plan and exec"; status; key;
                tenant = tn.Tenancy.id; planned = Some r; plan_ms;
                exec_ms = 0.0 },
              Some tn )
        | `Run (tn, key, r, status, plan_ms, _) ->
            let table, exec_ms = List.assoc key executed in
            ( { outcome = Table table; status; key; tenant = tn.Tenancy.id;
                planned = Some r; plan_ms; exec_ms },
              Some tn )
        | `Alias (tn, key, r, status, plan_ms) ->
            (* aliased onto the representative execution of the same
               key: same immutable table, no second execution *)
            t.shared_execs <- t.shared_execs + 1;
            Obs.incr "serve.exec.shared";
            let table, _ = List.assoc key executed in
            ( { outcome = Table table; status; key; tenant = tn.Tenancy.id;
                planned = Some r; plan_ms; exec_ms = 0.0 },
              Some tn ))
      classified
  in
  (* accounting (coordinator only, deterministic) *)
  let after = Shard_lru.stats t.cache in
  Obs.incr ~by:(after.Shard_lru.hits - before.Shard_lru.hits)
    "serve.cache.hits";
  Obs.incr ~by:(after.Shard_lru.misses - before.Shard_lru.misses)
    "serve.cache.misses";
  Obs.incr ~by:(after.Shard_lru.evictions - before.Shard_lru.evictions)
    "serve.cache.evictions";
  List.iter
    (fun ((r : response), (tn : Tenancy.t option)) ->
      t.queries <- t.queries + 1;
      Obs.incr "serve.queries";
      (match tn with
      | Some tn -> tn.Tenancy.queries <- tn.Tenancy.queries + 1
      | None -> ());
      (match r.outcome with
      | Rejected _ ->
          t.rejections <- t.rejections + 1;
          (match tn with
          | Some tn -> tn.Tenancy.rejections <- tn.Tenancy.rejections + 1
          | None -> ());
          Obs.incr "serve.rejections"
      | Expired _ ->
          t.expired <- t.expired + 1;
          (match tn with
          | Some tn -> tn.Tenancy.expired <- tn.Tenancy.expired + 1
          | None -> ());
          Obs.incr "serve.expired"
      | Table _ -> ());
      t.plan_ms_total <- t.plan_ms_total +. r.plan_ms;
      t.exec_ms_total <- t.exec_ms_total +. r.exec_ms;
      Obs.record "serve.plan_ms" r.plan_ms;
      Obs.record "serve.exec_ms" r.exec_ms;
      Obs.record "serve.query_ms" (r.plan_ms +. r.exec_ms))
    responses;
  List.map fst responses

let rec admit t = function
  | [] -> []
  | requests ->
      let rec take n acc = function
        | rest when n = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | q :: rest -> take (n - 1) (q :: acc) rest
      in
      let round, rest = take t.max_batch [] requests in
      let served = serve_round t round in
      served @ admit t rest

let submit_batch_requests t requests = admit t requests
let submit_batch t queries = admit t (List.map (fun q -> request q) queries)

let submit_request t req =
  match serve_round t [ req ] with
  | [ r ] -> r
  | _ -> assert false

let submit ?tenant t query = submit_request t (request ?tenant query)
let submit_sql ?tenant t sql = submit ?tenant t (parse ?tenant t sql)

type stats = {
  queries : int;
  rejections : int;
  expired : int;
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
  invalidated : int;
  reverified : int;
  retained : int;
  entries : int;
  capacity : int;
  subplan_hits : int;
  subplan_stores : int;
  subplan_invalidated : int;
  subplan_entries : int;
  shared_execs : int;
  tenants : int;
  shards : int;
  cross_tenant_hits : int;
  plan_ms : float;
  exec_ms : float;
}

let stats t =
  let c = Shard_lru.stats t.cache in
  { queries = t.queries; rejections = t.rejections; expired = t.expired;
    hits = c.Shard_lru.hits;
    misses = c.Shard_lru.misses; insertions = c.Shard_lru.insertions;
    evictions = c.Shard_lru.evictions; invalidated = t.invalidated;
    reverified = t.reverified; retained = t.retained;
    entries = Shard_lru.length t.cache;
    capacity = Shard_lru.capacity t.cache;
    subplan_hits = t.subplan_hits; subplan_stores = t.subplan_stores;
    subplan_invalidated = t.subplan_invalidated;
    subplan_entries = Shard_lru.length t.subcache;
    shared_execs = t.shared_execs; tenants = Tenancy.count t.tenants;
    shards = Shard_lru.shards t.cache;
    cross_tenant_hits = t.cross_tenant_hits;
    plan_ms = t.plan_ms_total; exec_ms = t.exec_ms_total }

let hit_rate s =
  let looked = s.hits + s.misses in
  if looked = 0 then 0.0 else float_of_int s.hits /. float_of_int looked

let cache_keys t = Shard_lru.keys t.cache
let subcache_keys t = Shard_lru.keys t.subcache
let dag_stats t = Planner.Dag.stats t.dag
let derivations_shared t = Verify.Derive.memo_hits t.derive_memo
let shard_probes t = Shard_lru.probes t.subcache

let subplan_hit_rate s =
  let looked = s.subplan_hits + s.subplan_stores in
  if looked = 0 then 0.0
  else float_of_int s.subplan_hits /. float_of_int looked

let render_stats s =
  Printf.sprintf
    "%d queries (%d rejected, %d expired): %d hits, %d misses (%.1f%% hit \
     rate), %d/%d entries, %d evictions; %d invalidated, %d reverified, \
     %d retained; subplans %d hits / %d stores (%d entries, %d \
     invalidated), %d shared execs; %d tenants, %d shards, %d cross-tenant \
     hits; plan %.2f ms, exec %.2f ms"
    s.queries s.rejections s.expired s.hits s.misses
    (100.0 *. hit_rate s)
    s.entries s.capacity s.evictions s.invalidated s.reverified s.retained
    s.subplan_hits s.subplan_stores s.subplan_entries s.subplan_invalidated
    s.shared_execs s.tenants s.shards s.cross_tenant_hits s.plan_ms s.exec_ms

let stats_json s =
  Json.Obj
    [ ("queries", Json.Int s.queries);
      ("rejections", Json.Int s.rejections);
      ("expired", Json.Int s.expired);
      ("hits", Json.Int s.hits);
      ("misses", Json.Int s.misses);
      ("hit_rate", Json.Float (hit_rate s));
      ("insertions", Json.Int s.insertions);
      ("evictions", Json.Int s.evictions);
      ("invalidated", Json.Int s.invalidated);
      ("reverified", Json.Int s.reverified);
      ("retained", Json.Int s.retained);
      ("entries", Json.Int s.entries);
      ("capacity", Json.Int s.capacity);
      ("subplan_hits", Json.Int s.subplan_hits);
      ("subplan_stores", Json.Int s.subplan_stores);
      ("subplan_hit_rate", Json.Float (subplan_hit_rate s));
      ("subplan_invalidated", Json.Int s.subplan_invalidated);
      ("subplan_entries", Json.Int s.subplan_entries);
      ("shared_execs", Json.Int s.shared_execs);
      ("tenants", Json.Int s.tenants);
      ("shards", Json.Int s.shards);
      ("cross_tenant_hits", Json.Int s.cross_tenant_hits);
      ("plan_ms", Json.Float s.plan_ms);
      ("exec_ms", Json.Float s.exec_ms) ]
