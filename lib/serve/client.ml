exception Timeout
exception Protocol_error of string

type t = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  timeout_s : float;
  mutable eof : bool;
}

let connect ?(timeout_s = 10.0) addr =
  let fd =
    match addr with
    | Server.Tcp port ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try
           Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
         with e -> Unix.close fd; raise e);
        fd
    | Server.Unix_path path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.connect fd (Unix.ADDR_UNIX path)
         with e -> Unix.close fd; raise e);
        fd
  in
  { fd; buf = Buffer.create 256; timeout_s; eof = false }

let send t line =
  let data = line ^ "\n" in
  let len = String.length data in
  let off = ref 0 in
  while !off < len do
    match Unix.write_substring t.fd data !off (len - !off) with
    | k -> off := !off + k
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done

let shutdown_send t =
  try Unix.shutdown t.fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ()

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

type reply = { line : int; tag : string; info : string; body : string list }

(* one buffered line, bounded by [deadline]; [None] on EOF *)
let rec read_line t deadline =
  let data = Buffer.contents t.buf in
  match String.index_opt data '\n' with
  | Some i ->
      Buffer.clear t.buf;
      Buffer.add_substring t.buf data (i + 1) (String.length data - i - 1);
      Some (String.sub data 0 i)
  | None ->
      if t.eof then
        if data = "" then None
        else begin
          Buffer.clear t.buf;
          Some data
        end
      else begin
        let now = Unix.gettimeofday () in
        if now >= deadline then raise Timeout;
        (match
           Unix.select [ t.fd ] [] [] (Float.min 0.25 (deadline -. now))
         with
        | [], _, _ -> ()
        | _ -> (
            let b = Bytes.create 4096 in
            match Unix.read t.fd b 0 (Bytes.length b) with
            | 0 -> t.eof <- true
            | k -> Buffer.add_subbytes t.buf b 0 k
            | exception Unix.Unix_error ((EINTR | EAGAIN | EWOULDBLOCK), _, _)
              ->
                ()
            | exception Unix.Unix_error _ -> t.eof <- true)
        | exception Unix.Unix_error (EINTR, _, _) -> ());
        read_line t deadline
      end

let parse_status line =
  let fail () =
    raise (Protocol_error (Printf.sprintf "unparseable status line %S" line))
  in
  if not (String.starts_with ~prefix:"-- [" line) then fail ();
  match String.index_opt line ']' with
  | None -> fail ()
  | Some j -> (
      let n =
        match int_of_string_opt (String.sub line 4 (j - 4)) with
        | Some n -> n
        | None -> fail ()
      in
      let rest =
        String.trim (String.sub line (j + 1) (String.length line - j - 1))
      in
      match String.index_opt rest ':' with
      | None -> (n, rest, "")
      | Some c ->
          ( n,
            String.sub rest 0 c,
            String.trim
              (String.sub rest (c + 1) (String.length rest - c - 1)) ))

(* "plan 0.12 ms, exec 0.05 ms, 3 rows" -> 3 *)
let rows_of_info info =
  let toks =
    List.filter
      (fun x -> x <> "")
      (String.split_on_char ' '
         (String.map (fun c -> if c = ',' then ' ' else c) info))
  in
  let rec go = function
    | a :: "rows" :: _ -> int_of_string_opt a
    | _ :: rest -> go rest
    | [] -> None
  in
  go toks

let recv t =
  let deadline = Unix.gettimeofday () +. t.timeout_s in
  match read_line t deadline with
  | None -> None
  | Some status ->
      let n, tag, info = parse_status status in
      let body =
        if tag = "hit" || tag = "miss" then
          match rows_of_info info with
          | None ->
              raise (Protocol_error ("no row count in status: " ^ status))
          | Some rows ->
              List.init (rows + 1) (fun _ ->
                  match read_line t deadline with
                  | Some l -> l
                  | None -> raise (Protocol_error "EOF inside a table"))
        else []
      in
      Some { line = n; tag; info; body }

let recv_all t =
  let rec go acc =
    match recv t with None -> List.rev acc | Some r -> go (r :: acc)
  in
  go []

let table_csv r =
  match r.body with
  | [] -> None
  | body -> Some (String.concat "\n" body ^ "\n")
