(** Bounded LRU map with string keys, used as the verified plan cache.

    Single-domain by design: the serving layer performs every cache
    operation on the coordinating domain, in request order, so the
    cache's evolution — and in particular which entries a bounded
    cache evicts — is a pure function of the request stream,
    independent of how many domains execute the work in between (the
    determinism the differential serve tests rely on).

    Recency is an intrusive doubly-linked list threaded through the
    hash-table entries (head = most recent, tail = victim), so find,
    insert, refresh and eviction are all O(1) — a cache pinned at
    capacity under overload pays constant time per insert, where a
    stamp-scan implementation would pay a full-table walk. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val capacity : _ t -> int
val length : _ t -> int

val find : 'a t -> string -> 'a option
(** Refreshes the entry's recency and counts a hit or a miss. *)

val mem : _ t -> string -> bool
(** Pure probe: no recency refresh, no stats. *)

val peek : 'a t -> string -> 'a option
(** Pure lookup: no recency refresh, no stats, no mutation. Because it
    touches nothing, concurrent [peek]s from several domains are safe
    as long as no mutating operation runs in parallel — the serving
    layer's exec phase reads the sub-plan cache this way against a
    frozen snapshot, deferring the [find]/[add] replay to the
    coordinator. *)

val add : 'a t -> string -> 'a -> unit
(** Insert or replace, making the entry most recent; evicts the least
    recently used entry when the cache is over capacity. *)

val remap : 'a t -> (string -> 'a -> (string * 'a) option) -> int
(** [remap t f] rewrites every binding in place: [f key value] returns
    [None] to drop the entry or [Some (key', value')] to rebind it —
    the entry keeps its position in the recency list, so migration
    does not disturb LRU order (the stamp-preservation contract of the
    original implementation). Bindings are visited most recently used
    first. Returns the number of entries dropped. No statistics are
    recorded (this is maintenance, not traffic). When two bindings map
    to the same new key, the later one visited wins; callers rebinding
    under an injective key transformation (the serve layer's
    environment-fingerprint rekeying) never collide. *)

val keys : _ t -> string list
(** All keys, most recently used first — the cache's observable state,
    compared across job counts by the differential tests. *)

val clear : 'a t -> unit
(** Drop every entry (statistics are kept). *)

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
}

val stats : _ t -> stats
