(* Socket front-end: a single-threaded select loop on the accept path,
   planning/execution on the service's Par pool. Every Service and
   cache access happens on the loop thread, so sessions are isolated
   by construction — the only thing a connection can influence is its
   own byte stream (and, through admission control, how much work the
   shared backlog accepts).

   Life of a request line:

     read → [netfaults: garble? delay?] → admission
       admission: backlog full? -> "shed" | parse? -> "parse error"
                  | enqueue (deadline attached)
     dispatch (<= cfg.dispatch per loop turn):
       Service.submit_batch_requests — the service checks the deadline
       at its admission and again between plan and exec
     response formatted -> session out-queue -> nonblocking writes

   Nothing is ever silently dropped: each request line ends in exactly
   one framed response (table / rejected / shed / deadline exceeded /
   parse error) unless the connection itself dies, which is counted. *)

type addr = Tcp of int | Unix_path of string

let addr_of_string s =
  match int_of_string_opt s with
  | Some p when p >= 0 && p < 65536 -> Tcp p
  | Some p ->
      invalid_arg (Printf.sprintf "Server.addr_of_string: port %d out of range" p)
  | None ->
      if String.contains s '/' then Unix_path s
      else
        invalid_arg
          (Printf.sprintf
             "Server.addr_of_string: %S is neither a port nor a path (a \
              socket path must contain '/')"
             s)

let addr_to_string = function
  | Tcp p -> string_of_int p
  | Unix_path p -> p

type config = {
  backlog : int;
  dispatch : int;
  deadline_ms : int option;
  max_sessions : int;
  outq_highwater : int;
  netfaults : Netfaults.spec;
  fault_seed : int;
  drain_grace_s : float;
}

let default_config =
  { backlog = 64; dispatch = 16; deadline_ms = None; max_sessions = 64;
    outq_highwater = 1 lsl 20; netfaults = Netfaults.none; fault_seed = 1337;
    drain_grace_s = 5.0 }

type summary = {
  sum_sid : int;
  sum_tenant : string;
  sum_requests : int;
  sum_responses : int;
}

type stats = {
  sessions : int;
  sessions_refused : int;
  requests : int;
  accepted : int;
  tables : int;
  rejected : int;
  shed : int;
  expired : int;
  parse_errors : int;
  disconnects : int;
  stalled : int;
  forced_disconnects : int;
  garbled : int;
  closed : summary list;  (* per-session final counters, sorted by sid *)
}

type session = {
  sid : int;
  fd : Unix.file_descr;
  nf : Netfaults.session;
  inbuf : Buffer.t;  (* bytes read, not yet a complete line *)
  outq : string Queue.t;  (* responses owed, FIFO *)
  mutable out_off : int;  (* bytes of the queue head already written *)
  mutable out_bytes : int;
  mutable line_no : int;
  mutable tenant : string;  (* the \tenant the session switched to *)
  mutable requests_seen : int;
  mutable responses_enqueued : int;
  mutable open_requests : int;  (* admitted or delayed, response pending *)
  mutable eof : bool;  (* inbound done: client EOF, stall cut, shutdown *)
  mutable closing : bool;  (* flush out-queue, then close *)
  mutable dead : bool;  (* fd closed *)
}

(* a request line waiting out a slow-fault delay, pre-admission *)
type waiting = {
  w_s : session;
  w_line : int;
  w_release : float;
  w_deadline : float option;
  w_text : string;
  w_tenant : string;  (* captured when the line arrived: a later
                         \tenant use must not retarget a delayed
                         request *)
}

(* an admitted (parsed) request in the global backlog *)
type admitted = {
  a_s : session;
  a_line : int;
  a_deadline : float option;
  a_plan : Relalg.Plan.t;
  a_tenant : string;
}

type t = {
  service : Service.t;
  cfg : config;
  listen_fd : Unix.file_descr;
  bound : addr;
  stopping : bool Atomic.t;
  mutable sessions : session list;
  backlog : admitted Queue.t;
  mutable delayed : waiting list;
  mutable next_sid : int;
  mutable c_sessions : int;
  mutable c_sessions_refused : int;
  mutable c_requests : int;
  mutable c_accepted : int;
  mutable c_tables : int;
  mutable c_rejected : int;
  mutable c_shed : int;
  mutable c_expired : int;
  mutable c_parse_errors : int;
  mutable c_disconnects : int;
  mutable c_stalled : int;
  mutable c_forced : int;
  mutable c_garbled : int;
  mutable c_closed : summary list;  (* accumulated in close order *)
}

let create ?(config = default_config) ~service addr =
  let listen_fd, bound =
    match addr with
    | Tcp port ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        (try Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
         with e -> Unix.close fd; raise e);
        Unix.listen fd 128;
        let bound =
          match Unix.getsockname fd with
          | Unix.ADDR_INET (_, p) -> Tcp p
          | _ -> Tcp port
        in
        (fd, bound)
    | Unix_path path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try
           Unix.bind fd (Unix.ADDR_UNIX path);
           Unix.listen fd 128
         with e -> Unix.close fd; raise e);
        (fd, Unix_path path)
  in
  Unix.set_nonblock listen_fd;
  { service; cfg = config; listen_fd; bound; stopping = Atomic.make false;
    sessions = []; backlog = Queue.create (); delayed = []; next_sid = 0;
    c_sessions = 0; c_sessions_refused = 0; c_requests = 0; c_accepted = 0;
    c_tables = 0; c_rejected = 0; c_shed = 0; c_expired = 0;
    c_parse_errors = 0; c_disconnects = 0; c_stalled = 0; c_forced = 0;
    c_garbled = 0; c_closed = [] }

let bound_addr t = t.bound
let stop t = Atomic.set t.stopping true

(* refusal messages must stay one line to keep the framing parseable *)
let one_line msg =
  String.concat " | "
    (List.filter
       (fun x -> x <> "")
       (List.map String.trim (String.split_on_char '\n' msg)))

(* --- output ----------------------------------------------------------- *)

(* Per-session final counters, recorded exactly once, at the moment a
   session's [dead] flag flips (both close paths guard on it). The
   accumulation order is whatever order sessions happened to die in —
   nondeterministic under drain — so [stats] sorts by sid before
   anything prints. *)
let record_summary t s =
  t.c_closed <-
    { sum_sid = s.sid; sum_tenant = s.tenant; sum_requests = s.requests_seen;
      sum_responses = s.responses_enqueued }
    :: t.c_closed

let force_close t s =
  if not s.dead then begin
    record_summary t s;
    s.dead <- true;
    s.eof <- true;
    s.closing <- true;
    if s.out_bytes > 0 || s.open_requests > 0 then begin
      t.c_disconnects <- t.c_disconnects + 1;
      Obs.incr "server.disconnects"
    end;
    Queue.clear s.outq;
    s.out_bytes <- 0;
    s.open_requests <- 0;
    (try Unix.close s.fd with Unix.Unix_error _ -> ())
  end

let push_out t s text =
  if not s.dead then
    match Netfaults.disconnect_after s.nf with
    | Some k when s.responses_enqueued >= k ->
        (* past the chaos cut: the connection is gone from the client's
           point of view, the response is lost with it *)
        ()
    | cut ->
        Queue.push text s.outq;
        s.out_bytes <- s.out_bytes + String.length text;
        s.responses_enqueued <- s.responses_enqueued + 1;
        (match cut with
        | Some k when s.responses_enqueued >= k ->
            (* force-close at a response boundary: the k-th response is
               flushed whole, then the fd is torn down *)
            s.eof <- true;
            s.closing <- true;
            t.c_forced <- t.c_forced + 1;
            Obs.incr "server.forced_disconnects"
        | _ -> ())

(* enqueue the one response a pending request is owed *)
let finish t s text =
  push_out t s text;
  if s.open_requests > 0 then s.open_requests <- s.open_requests - 1

let format_response n (r : Service.response) =
  match r.Service.outcome with
  | Service.Table tbl ->
      Printf.sprintf "-- [%d] %s: plan %.2f ms, exec %.2f ms, %d rows\n%s" n
        (match r.Service.status with
        | Service.Hit -> "hit"
        | Service.Miss -> "miss")
        r.Service.plan_ms r.Service.exec_ms
        (Engine.Table.cardinality tbl)
        (Engine.Csv.to_string tbl)
  | Service.Rejected msg ->
      Printf.sprintf "-- [%d] rejected: %s\n" n (one_line msg)
  | Service.Expired why ->
      Printf.sprintf "-- [%d] deadline exceeded: %s\n" n (one_line why)

(* --- admission -------------------------------------------------------- *)

let admit t w =
  let s = w.w_s in
  if Queue.length t.backlog >= t.cfg.backlog then begin
    t.c_shed <- t.c_shed + 1;
    Obs.incr "server.shed";
    finish t s
      (Printf.sprintf "-- [%d] shed: backlog full (%d queued)\n" w.w_line
         (Queue.length t.backlog))
  end
  else
    match Service.parse ~tenant:w.w_tenant t.service w.w_text with
    | plan ->
        t.c_accepted <- t.c_accepted + 1;
        Obs.incr "server.accepted";
        Queue.push
          { a_s = s; a_line = w.w_line; a_deadline = w.w_deadline;
            a_plan = plan; a_tenant = w.w_tenant }
          t.backlog
    | exception Mpq_sql.Sql_lexer.Lex_error (msg, pos) ->
        t.c_parse_errors <- t.c_parse_errors + 1;
        Obs.incr "server.parse_errors";
        finish t s
          (Printf.sprintf "-- [%d] parse error at %d: %s\n" w.w_line pos
             (one_line msg))
    | exception Mpq_sql.Sql_parser.Parse_error msg
    | exception Mpq_sql.Sql_plan.Plan_error msg ->
        t.c_parse_errors <- t.c_parse_errors + 1;
        Obs.incr "server.parse_errors";
        finish t s
          (Printf.sprintf "-- [%d] parse error: %s\n" w.w_line (one_line msg))

let mark_stalled t s =
  if not s.eof then begin
    s.eof <- true;
    Buffer.clear s.inbuf;
    t.c_stalled <- t.c_stalled + 1;
    Obs.incr "server.stalled"
  end

let handle_request t s n line (verdict : Netfaults.request_verdict) =
  if line.[0] = '\\' then
    (* directives: \stats and \tenant are the only ones a shared
       socket can honour — \tenant only retargets the session's own
       future requests (tenants are registered at startup, so a wire
       string can never create or mutate one), while the mutating
       directives (\policy, \invalidate) would let one session
       rewrite the environment under every other, exactly the
       cross-session interference the server promises away *)
    match
      List.filter (fun x -> x <> "") (String.split_on_char ' ' line)
    with
    | [ "\\stats" ] ->
        push_out t s
          (Printf.sprintf "-- [%d] stats: %s\n" n
             (one_line (Service.render_stats (Service.stats t.service))))
    | [ "\\tenant" ] ->
        push_out t s (Printf.sprintf "-- [%d] tenant: %s\n" n s.tenant)
    | [ "\\tenant"; "list" ] ->
        push_out t s
          (Printf.sprintf "-- [%d] tenants: %s\n" n
             (String.concat ", " (Service.tenant_ids t.service)))
    | [ "\\tenant"; "use"; id ] ->
        if List.mem id (Service.tenant_ids t.service) then begin
          s.tenant <- id;
          push_out t s (Printf.sprintf "-- [%d] tenant: %s\n" n id)
        end
        else begin
          t.c_rejected <- t.c_rejected + 1;
          push_out t s
            (Printf.sprintf "-- [%d] rejected: unknown tenant %S\n" n id)
        end
    | d :: _ ->
        t.c_rejected <- t.c_rejected + 1;
        push_out t s
          (Printf.sprintf
             "-- [%d] rejected: directive %s is not available over a socket \
              (sessions are isolated; only \\stats)\n"
             n d)
    | [] -> ()
  else begin
    s.open_requests <- s.open_requests + 1;
    let now = Unix.gettimeofday () in
    (* the budget starts when the line is read, so a slow-fault delay
       burns the request's deadline, not the server's *)
    let deadline =
      Option.map (fun ms -> now +. (float_of_int ms /. 1000.0))
        t.cfg.deadline_ms
    in
    let w =
      { w_s = s; w_line = n;
        w_release = now +. (float_of_int verdict.Netfaults.delay_ms /. 1000.0);
        w_deadline = deadline; w_text = line; w_tenant = s.tenant }
    in
    if verdict.Netfaults.delay_ms > 0 then t.delayed <- w :: t.delayed
    else admit t w
  end

let handle_line t s raw =
  s.line_no <- s.line_no + 1;
  let n = s.line_no in
  let line = String.trim raw in
  if line = "" || line.[0] = '#' then ()
  else begin
    s.requests_seen <- s.requests_seen + 1;
    t.c_requests <- t.c_requests + 1;
    Obs.incr "server.requests";
    match Netfaults.stall_after s.nf with
    | Some k when s.requests_seen > k ->
        (* past the stall cut: the inbound side went silent, this line
           was never heard *)
        mark_stalled t s
    | cut ->
        let verdict = Netfaults.on_request s.nf in
        let line =
          if verdict.Netfaults.garbage then begin
            t.c_garbled <- t.c_garbled + 1;
            Obs.incr "server.garbled";
            Netfaults.garble s.nf line
          end
          else line
        in
        handle_request t s n line verdict;
        (match cut with
        | Some k when s.requests_seen >= k -> mark_stalled t s
        | _ -> ())
  end

(* --- dispatch --------------------------------------------------------- *)

let dispatch t =
  if t.delayed <> [] then begin
    let now = Unix.gettimeofday () in
    let due, later =
      if Atomic.get t.stopping then (t.delayed, [])
      else List.partition (fun w -> w.w_release <= now) t.delayed
    in
    t.delayed <- later;
    (* release order is deterministic in (release, session, line), not
       in list-accumulation order *)
    List.iter (admit t)
      (List.sort
         (fun a b ->
           compare
             (a.w_release, a.w_s.sid, a.w_line)
             (b.w_release, b.w_s.sid, b.w_line))
         due)
  end;
  if not (Queue.is_empty t.backlog) then begin
    let n = min t.cfg.dispatch (Queue.length t.backlog) in
    let items = List.init n (fun _ -> Queue.pop t.backlog) in
    let reqs =
      List.map
        (fun a ->
          Service.request ?deadline:a.a_deadline ~tenant:a.a_tenant a.a_plan)
        items
    in
    match Service.submit_batch_requests t.service reqs with
    | resps ->
        List.iter2
          (fun a (r : Service.response) ->
            (match r.Service.outcome with
            | Service.Table _ ->
                t.c_tables <- t.c_tables + 1;
                Obs.incr "server.tables"
            | Service.Rejected _ ->
                t.c_rejected <- t.c_rejected + 1;
                Obs.incr "server.rejected"
            | Service.Expired _ ->
                t.c_expired <- t.c_expired + 1;
                Obs.incr "server.deadline");
            finish t a.a_s (format_response a.a_line r))
          items resps
    | exception e ->
        (* the structured-refusal contract survives even a service
           blow-up: every request of the round still gets its line *)
        List.iter
          (fun a ->
            t.c_rejected <- t.c_rejected + 1;
            finish t a.a_s
              (Printf.sprintf "-- [%d] rejected: internal error: %s\n"
                 a.a_line
                 (one_line (Printexc.to_string e))))
          items
  end

(* --- socket IO -------------------------------------------------------- *)

let drain_lines t s =
  let data = Buffer.contents s.inbuf in
  Buffer.clear s.inbuf;
  let len = String.length data in
  let start = ref 0 in
  (try
     while (not s.eof) && not s.dead do
       match String.index_from_opt data !start '\n' with
       | Some i ->
           let line = String.sub data !start (i - !start) in
           start := i + 1;
           handle_line t s line
       | None -> raise Exit
     done
   with Exit -> ());
  if (not s.eof) && (not s.dead) && !start < len then
    Buffer.add_substring s.inbuf data !start (len - !start)

let read_session t s =
  let buf = Bytes.create 4096 in
  match Unix.read s.fd buf 0 (Bytes.length buf) with
  | 0 -> s.eof <- true
  | k ->
      Buffer.add_subbytes s.inbuf buf 0 k;
      drain_lines t s
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> force_close t s

let write_session t s =
  try
    while not (Queue.is_empty s.outq) do
      let head = Queue.peek s.outq in
      let want = String.length head - s.out_off in
      let k = Unix.write_substring s.fd head s.out_off want in
      s.out_bytes <- s.out_bytes - k;
      if k = want then begin
        ignore (Queue.pop s.outq);
        s.out_off <- 0
      end
      else begin
        s.out_off <- s.out_off + k;
        raise Exit
      end
    done
  with
  | Exit -> ()
  | Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | Unix.Unix_error _ -> force_close t s

let accept_session t =
  match Unix.accept t.listen_fd with
  | fd, _ ->
      Unix.set_nonblock fd;
      if List.length t.sessions >= t.cfg.max_sessions then begin
        t.c_sessions_refused <- t.c_sessions_refused + 1;
        Obs.incr "server.sessions_refused";
        let msg =
          Printf.sprintf "-- [0] shed: session limit (%d active)\n"
            (List.length t.sessions)
        in
        (try ignore (Unix.write_substring fd msg 0 (String.length msg))
         with Unix.Unix_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ())
      end
      else begin
        let sid = t.next_sid in
        t.next_sid <- sid + 1;
        t.c_sessions <- t.c_sessions + 1;
        Obs.incr "server.sessions";
        let s =
          { sid; fd;
            nf = Netfaults.session ~seed:t.cfg.fault_seed t.cfg.netfaults sid;
            inbuf = Buffer.create 256; outq = Queue.create (); out_off = 0;
            out_bytes = 0; line_no = 0; tenant = Tenancy.default_id;
            requests_seen = 0;
            responses_enqueued = 0; open_requests = 0; eof = false;
            closing = false; dead = false }
        in
        t.sessions <- t.sessions @ [ s ]
      end
  | exception
      Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR | ECONNABORTED), _, _) ->
      ()

(* close sessions that owe nothing and have flushed everything *)
let sweep t =
  List.iter
    (fun s ->
      if not s.dead then begin
        if s.eof && s.open_requests = 0 then s.closing <- true;
        if s.closing && Queue.is_empty s.outq then begin
          record_summary t s;
          s.dead <- true;
          (try Unix.close s.fd with Unix.Unix_error _ -> ())
        end
      end)
    t.sessions;
  t.sessions <- List.filter (fun s -> not s.dead) t.sessions

(* --- event loop ------------------------------------------------------- *)

let run t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let listener_open = ref true in
  let drain_deadline = ref infinity in
  let close_listener () =
    if !listener_open then begin
      listener_open := false;
      (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
      match t.bound with
      | Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
      | Tcp _ -> ()
    end
  in
  let rec loop () =
    if Atomic.get t.stopping && !listener_open then begin
      (* graceful shutdown: stop accepting and reading, then drain
         everything already admitted or delayed and flush within the
         grace budget *)
      close_listener ();
      drain_deadline := Unix.gettimeofday () +. t.cfg.drain_grace_s;
      List.iter (fun s -> s.eof <- true) t.sessions
    end;
    dispatch t;
    sweep t;
    let stopping = Atomic.get t.stopping in
    let served =
      stopping
      && Queue.is_empty t.backlog
      && t.delayed = []
      && List.for_all (fun s -> s.open_requests = 0) t.sessions
    in
    if served && List.for_all (fun s -> Queue.is_empty s.outq) t.sessions
    then
      (* everything answered and flushed: done *)
      List.iter (force_close t) t.sessions
    else if served && Unix.gettimeofday () > !drain_deadline then
      (* grace exhausted: the remaining bytes belong to clients that
         stopped reading; cut them (counted as disconnects) *)
      List.iter (force_close t) t.sessions
    else begin
      let reads =
        (if !listener_open then [ t.listen_fd ] else [])
        @ List.filter_map
            (fun s ->
              if
                (not s.dead) && (not s.eof) && (not s.closing)
                && s.out_bytes < t.cfg.outq_highwater
              then Some s.fd
              else None)
            t.sessions
      in
      let writes =
        List.filter_map
          (fun s ->
            if (not s.dead) && not (Queue.is_empty s.outq) then Some s.fd
            else None)
          t.sessions
      in
      let timeout =
        if not (Queue.is_empty t.backlog) then 0.0
        else if t.delayed <> [] then begin
          let now = Unix.gettimeofday () in
          List.fold_left
            (fun acc w -> Float.min acc (Float.max 0.0 (w.w_release -. now)))
            0.05 t.delayed
        end
        else if stopping then 0.02
        else 0.25
      in
      (match Unix.select reads writes [] timeout with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | exception Unix.Unix_error (EBADF, _, _) ->
          (* an fd died between sweep and select; the per-session IO
             error paths will reap it next turn *)
          ()
      | r, w, _ ->
          if List.mem t.listen_fd r then accept_session t;
          List.iter
            (fun s -> if (not s.dead) && List.mem s.fd w then write_session t s)
            t.sessions;
          List.iter
            (fun s -> if (not s.dead) && List.mem s.fd r then read_session t s)
            t.sessions);
      loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter (force_close t) t.sessions;
      t.sessions <- [];
      close_listener ())
    loop

(* --- stats ------------------------------------------------------------ *)

let stats t =
  { sessions = t.c_sessions; sessions_refused = t.c_sessions_refused;
    requests = t.c_requests; accepted = t.c_accepted; tables = t.c_tables;
    rejected = t.c_rejected; shed = t.c_shed; expired = t.c_expired;
    parse_errors = t.c_parse_errors; disconnects = t.c_disconnects;
    stalled = t.c_stalled; forced_disconnects = t.c_forced;
    garbled = t.c_garbled;
    closed =
      (* close order depends on drain timing; sid order is the
         deterministic presentation the CI grep relies on *)
      List.sort (fun a b -> compare a.sum_sid b.sum_sid) t.c_closed }

let render_stats (s : stats) =
  let head =
    Printf.sprintf
      "%d sessions (%d refused), %d requests: %d accepted, %d tables, %d \
       rejected, %d shed, %d expired, %d parse errors; %d disconnects, %d \
       stalled, %d forced, %d garbled"
      s.sessions s.sessions_refused s.requests s.accepted s.tables s.rejected
      s.shed s.expired s.parse_errors s.disconnects s.stalled
      s.forced_disconnects s.garbled
  in
  match s.closed with
  | [] -> head
  | closed ->
      head ^ "; per session: "
      ^ String.concat ", "
          (List.map
             (fun c ->
               Printf.sprintf "#%d[%s] %d req / %d resp" c.sum_sid
                 c.sum_tenant c.sum_requests c.sum_responses)
             closed)

let stats_json (s : stats) =
  Relalg.Json.Obj
    [ ("sessions", Relalg.Json.Int s.sessions);
      ("sessions_refused", Relalg.Json.Int s.sessions_refused);
      ("requests", Relalg.Json.Int s.requests);
      ("accepted", Relalg.Json.Int s.accepted);
      ("tables", Relalg.Json.Int s.tables);
      ("rejected", Relalg.Json.Int s.rejected);
      ("shed", Relalg.Json.Int s.shed);
      ("expired", Relalg.Json.Int s.expired);
      ("parse_errors", Relalg.Json.Int s.parse_errors);
      ("disconnects", Relalg.Json.Int s.disconnects);
      ("stalled", Relalg.Json.Int s.stalled);
      ("forced_disconnects", Relalg.Json.Int s.forced_disconnects);
      ("garbled", Relalg.Json.Int s.garbled);
      ( "closed",
        Relalg.Json.List
          (List.map
             (fun c ->
               Relalg.Json.Obj
                 [ ("sid", Relalg.Json.Int c.sum_sid);
                   ("tenant", Relalg.Json.String c.sum_tenant);
                   ("requests", Relalg.Json.Int c.sum_requests);
                   ("responses", Relalg.Json.Int c.sum_responses) ])
             s.closed) ) ]
