type t = {
  id : string;
  mutable policy : Authz.Authorization.t;
  mutable subjects : Authz.Subject.t list;
  mutable config : Authz.Opreq.config;
  mutable pricing : Planner.Pricing.t;
  mutable network : Planner.Network.t;
  mutable deliver_to : Authz.Subject.t option;
  mutable max_latency : float option;
  mutable env : string;
  mutable epoch : int;
  mutable queries : int;
  mutable hits : int;
  mutable misses : int;
  mutable rejections : int;
  mutable expired : int;
  mutable invalidated : int;
}

let default_id = "default"

let compute_env t =
  Planner.Optimizer.environment_fingerprint ~tenant:t.id ~policy:t.policy
    ~subjects:t.subjects ~config:t.config ~pricing:t.pricing
    ~network:t.network ?deliver_to:t.deliver_to ?max_latency:t.max_latency ()

let make ~id ?(config = Authz.Opreq.default)
    ?(pricing = Planner.Pricing.make ()) ?(network = Planner.Network.make ())
    ?deliver_to ?max_latency ~policy ~subjects () =
  let deliver_to =
    match deliver_to with
    | Some _ as d -> d
    | None ->
        List.find_opt
          (fun s -> s.Authz.Subject.role = Authz.Subject.User)
          subjects
  in
  let t =
    { id; policy; subjects; config; pricing; network; deliver_to;
      max_latency; env = ""; epoch = 0; queries = 0; hits = 0; misses = 0;
      rejections = 0; expired = 0; invalidated = 0 }
  in
  t.env <- compute_env t;
  t

let rotate t =
  t.env <- compute_env t;
  t.epoch <- t.epoch + 1;
  Obs.incr "serve.env_rotations"

type registry = (string, t) Hashtbl.t

let registry () : registry = Hashtbl.create 4

let add (r : registry) t =
  if Hashtbl.mem r t.id then
    invalid_arg (Printf.sprintf "Tenancy.add: tenant %S already registered" t.id);
  Hashtbl.replace r t.id t

let find (r : registry) id = Hashtbl.find_opt r id
let ids (r : registry) =
  List.sort String.compare (Hashtbl.fold (fun id _ acc -> id :: acc) r [])
let count (r : registry) = Hashtbl.length r
let iter f (r : registry) =
  (* sorted id order, so per-tenant reporting is deterministic *)
  List.iter (fun id -> f (Hashtbl.find r id)) (ids r)

type stats = {
  queries : int;
  hits : int;
  misses : int;
  rejections : int;
  expired : int;
  invalidated : int;
  epoch : int;
}

let stats (t : t) =
  { queries = t.queries; hits = t.hits; misses = t.misses;
    rejections = t.rejections; expired = t.expired;
    invalidated = t.invalidated; epoch = t.epoch }

let stats_json (s : stats) =
  Relalg.Json.Obj
    [ ("queries", Relalg.Json.Int s.queries);
      ("hits", Relalg.Json.Int s.hits);
      ("misses", Relalg.Json.Int s.misses);
      ("rejections", Relalg.Json.Int s.rejections);
      ("expired", Relalg.Json.Int s.expired);
      ("invalidated", Relalg.Json.Int s.invalidated);
      ("epoch", Relalg.Json.Int s.epoch) ]
