(** Tenant registry: named planning environments sharing one service.

    A tenant is everything the planner's environment fingerprint
    covers — policy, subject population, operation-requirement config,
    prices, bandwidths, recipient, latency bound — plus an identity.
    The identity is load-bearing: it is folded into the environment
    fingerprint as its own field
    ({!Planner.Optimizer.environment_fingerprint}'s [?tenant]), so two
    tenants occupy disjoint key spaces in every cache keyed by the
    fingerprint {e even when their policies are byte-identical}.
    Isolation between tenants is therefore a key-space property, not a
    lock or partition property: there is no per-tenant cache to keep
    separate, only keys that cannot collide — the same construction
    PR 9 used to keep equal subtrees under different policies from
    sharing sub-plan results.

    Each tenant also carries an epoch (bumped on every environment
    rotation) and its own serving counters, so a multi-tenant service
    can report per-tenant traffic and invalidation without threading
    tenant state through the cache itself. *)

type t = {
  id : string;
  mutable policy : Authz.Authorization.t;
  mutable subjects : Authz.Subject.t list;
  mutable config : Authz.Opreq.config;
  mutable pricing : Planner.Pricing.t;
  mutable network : Planner.Network.t;
  mutable deliver_to : Authz.Subject.t option;
  mutable max_latency : float option;
  mutable env : string;  (** environment fingerprint, cached *)
  mutable epoch : int;  (** rotations since creation *)
  (* per-tenant serving counters, maintained by the service *)
  mutable queries : int;
  mutable hits : int;
  mutable misses : int;
  mutable rejections : int;
  mutable expired : int;
  mutable invalidated : int;
}

val default_id : string
(** ["default"] — the tenant every request and every environment
    mutation targets when none is named; single-tenant deployments
    never see another id. *)

val make :
  id:string ->
  ?config:Authz.Opreq.config ->
  ?pricing:Planner.Pricing.t ->
  ?network:Planner.Network.t ->
  ?deliver_to:Authz.Subject.t ->
  ?max_latency:float ->
  policy:Authz.Authorization.t ->
  subjects:Authz.Subject.t list ->
  unit ->
  t
(** [deliver_to] defaults to the first [User] among [subjects], when
    any (the same rule the single-tenant service applied). The
    environment fingerprint is computed eagerly; epoch starts at 0. *)

val compute_env : t -> string
(** The environment fingerprint of the tenant's current state,
    including the [tenant:<id>] component. *)

val rotate : t -> unit
(** Recompute [env] and bump [epoch] — called after any in-place
    mutation of the tenant's planning inputs. *)

(** {2 Registry} *)

type registry

val registry : unit -> registry

val add : registry -> t -> unit
(** Raises [Invalid_argument] when a tenant with the same id is
    already registered — tenant ids name key spaces, so silently
    replacing one would strand cache entries under an id that now
    means something else. *)

val find : registry -> string -> t option

val ids : registry -> string list
(** Sorted. *)

val count : registry -> int
val iter : (t -> unit) -> registry -> unit

(** {2 Per-tenant stats} *)

type stats = {
  queries : int;
  hits : int;
  misses : int;
  rejections : int;
  expired : int;
  invalidated : int;
  epoch : int;
}

val stats : t -> stats
val stats_json : stats -> Relalg.Json.t
