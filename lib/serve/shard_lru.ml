(* Sharded only where concurrency needs it, global where determinism
   needs it: per-shard hashtables + mutexes let worker domains probe
   concurrently, while one global recency list under one global
   capacity — owned by the coordinator, the sole mutator — keeps the
   eviction sequence a pure function of the op sequence, independent of
   the shard count. A per-shard capacity split would make the victim
   depend on how keys happened to hash, breaking the differential
   shard-determinism guarantee. *)

type 'a node = {
  mutable key : string;
  skey : string;  (* shard key: fixed for the node's lifetime *)
  mutable value : 'a;
  mutable prev : 'a node option;  (* toward the head (more recent) *)
  mutable next : 'a node option;  (* toward the tail (less recent) *)
}

type 'a shard = {
  table : (string, 'a node) Hashtbl.t;
  lock : Mutex.t;
  mutable probes : int;  (* worker peeks landing here *)
}

type 'a t = {
  cap : int;
  shards : 'a shard array;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
}

type stats = {
  hits : int;
  misses : int;
  insertions : int;
  evictions : int;
}

let create ~capacity ~shards =
  if capacity < 1 then
    invalid_arg (Printf.sprintf "Shard_lru.create: capacity %d < 1" capacity);
  if shards < 1 then
    invalid_arg (Printf.sprintf "Shard_lru.create: shards %d < 1" shards);
  {
    cap = capacity;
    shards =
      Array.init shards (fun _ ->
          { table = Hashtbl.create (2 * ((capacity / shards) + 1));
            lock = Mutex.create (); probes = 0 });
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    insertions = 0;
    evictions = 0;
  }

let capacity t = t.cap
let shards t = Array.length t.shards

(* FNV-1a over the shard key: stable across runs (no Hashtbl.hash seed
   dependence), so shard placement — and the per-shard probe counters
   the bench reports — are reproducible. *)
let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c)))
             0x100000001b3L)
    s;
  !h

let shard_index t skey =
  Int64.to_int (fnv1a skey) land max_int mod Array.length t.shards

let shard_of t ~skey = shard_index t skey
let shard t skey = t.shards.(shard_index t skey)

let length t =
  Array.fold_left (fun acc s -> acc + Hashtbl.length s.table) 0 t.shards

let locked s f =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

(* list surgery: coordinator-only, so no lock — workers never follow
   prev/next pointers *)
let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.head <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.prev <- None;
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n =
  match n.prev with
  | None -> ()  (* already the head *)
  | Some _ ->
      unlink t n;
      push_front t n

let find t ~skey key =
  let s = shard t skey in
  match locked s (fun () -> Hashtbl.find_opt s.table key) with
  | Some n ->
      t.hits <- t.hits + 1;
      touch t n;
      Some n.value
  | None ->
      t.misses <- t.misses + 1;
      None

let mem t ~skey key =
  let s = shard t skey in
  locked s (fun () -> Hashtbl.mem s.table key)

let peek t ~skey key =
  let s = shard t skey in
  locked s (fun () ->
      s.probes <- s.probes + 1;
      match Hashtbl.find_opt s.table key with
      | Some n -> Some n.value
      | None -> None)

let evict_oldest t =
  match t.tail with
  | Some n ->
      unlink t n;
      let s = shard t n.skey in
      locked s (fun () -> Hashtbl.remove s.table n.key);
      t.evictions <- t.evictions + 1
  | None -> ()

let add t ~skey key value =
  let s = shard t skey in
  match locked s (fun () -> Hashtbl.find_opt s.table key) with
  | Some n ->
      n.value <- value;
      touch t n
  | None ->
      t.insertions <- t.insertions + 1;
      let n = { key; skey; value; prev = None; next = None } in
      locked s (fun () -> Hashtbl.replace s.table key n);
      push_front t n;
      if length t > t.cap then evict_oldest t

let remap t f =
  (* walk the global recency list MRU-first, as Lru.remap does; each
     node's shard is fixed (skey never changes), so the rewrite only
     ever touches one shard's table per node *)
  let dropped = ref 0 in
  let rec walk = function
    | None -> ()
    | Some n ->
        let next = ref n.next in
        let s = shard t n.skey in
        (match f n.key n.value with
        | None ->
            locked s (fun () -> Hashtbl.remove s.table n.key);
            unlink t n;
            incr dropped
        | Some (k', v') ->
            n.value <- v';
            if not (String.equal k' n.key) then
              locked s (fun () ->
                  Hashtbl.remove s.table n.key;
                  (match Hashtbl.find_opt s.table k' with
                  | Some clash when clash != n ->
                      (match !next with
                      | Some m when m == clash -> next := clash.next
                      | _ -> ());
                      unlink t clash;
                      incr dropped
                  | _ -> ());
                  n.key <- k';
                  Hashtbl.replace s.table k' n));
        walk !next
  in
  walk t.head;
  !dropped

let keys t =
  let rec collect acc = function
    | None -> List.rev acc
    | Some n -> collect (n.key :: acc) n.next
  in
  collect [] t.head

let clear t =
  Array.iter (fun s -> locked s (fun () -> Hashtbl.reset s.table)) t.shards;
  t.head <- None;
  t.tail <- None

let stats (t : _ t) =
  { hits = t.hits; misses = t.misses; insertions = t.insertions;
    evictions = t.evictions }

let probes t = Array.map (fun s -> s.probes) t.shards
