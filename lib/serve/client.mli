(** Minimal line-protocol client for {!Server} — the counterpart the
    tests and the load bench speak through, with the response framing
    knowledge in one place: a reply is one
    [-- \[N\] tag: info] status line, plus — when the tag is
    [hit]/[miss] with [K rows] — exactly [K + 1] CSV lines (header and
    rows). Reads are bounded by a timeout so a protocol violation
    surfaces as {!Timeout}, never a hang. *)

exception Timeout
exception Protocol_error of string

type t

val connect : ?timeout_s:float -> Server.addr -> t
(** Default timeout 10 s per {!recv}. *)

val send : t -> string -> unit
(** Send one request line (the newline is appended). *)

val shutdown_send : t -> unit
(** Half-close: signal end of requests while still reading replies. *)

val close : t -> unit

type reply = {
  line : int;  (** the [N] of [-- \[N\]] — the request's line number *)
  tag : string;  (** [hit], [miss], [rejected], [shed], [deadline exceeded],
                     [parse error], [stats], … *)
  info : string;  (** remainder of the status line after [": "] *)
  body : string list;  (** CSV lines ([K + 1] of them) for [hit]/[miss] *)
}

val recv : t -> reply option
(** Next framed reply; [None] on EOF. Raises {!Timeout} when the
    server sends nothing for the configured window, {!Protocol_error}
    on an unparseable status line. *)

val recv_all : t -> reply list
(** Drain replies until EOF. *)

val table_csv : reply -> string option
(** The reply's CSV block ([body] re-joined, trailing newline), when
    it carries one. *)
